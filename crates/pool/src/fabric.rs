//! Multi-node pool fabric: placement, redundancy, failover and repair.
//!
//! The single [`RemotePool`](crate::RemotePool) models the paper's one
//! logical memory node. Real deployments spread the pool over M nodes,
//! any of which can die — so a durable pool must decide *where* each
//! offloaded segment's copies live and *how* recall survives a node
//! death. [`PoolFabric`] is that layer: a placement and durability
//! ledger that rides alongside the `RemotePool` (which keeps modelling
//! aggregate capacity and the host's link) and tracks, per owning
//! container, which pool nodes hold its replicas or fragments.
//!
//! * [`RedundancyPolicy`] picks the scheme: `None` (one copy),
//!   `Mirror{k}` (k full copies on k distinct nodes) or
//!   `ErasureCoded{data, parity}` (`data+parity` fragments on distinct
//!   nodes; any `data` of them reconstruct the segment). Erasure coding
//!   is **modeled, not real**: the fabric charges its capacity and
//!   bandwidth overheads and a reconstruction-latency term, it does not
//!   compute codewords.
//! * Placement is a pure function of `(owner id, node-alive set)`:
//!   fragments land on distinct alive nodes walked cyclically from
//!   `owner % nodes` (anti-affinity), so plans are seed-stable and
//!   byte-identical across `--jobs`/`--shards`.
//! * After a node death the background [`RepairQueue`] re-replicates
//!   each under-replicated segment at a configurable bandwidth budget
//!   (repair traffic flows between pool nodes, not over the host link),
//!   so redundancy recovers instead of decaying.
//!
//! A degenerate fabric (`nodes = 1`, `RedundancyPolicy::None`) is never
//! constructed by the platform — the `Option<PoolFabric>` stays `None`
//! and exactly the pre-fabric code paths run, which is what makes the
//! byte-identity guarantee provable rather than merely tested.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use faasmem_metrics::DurabilityTracker;
use faasmem_sim::{SimDuration, SimTime};
use faasmem_trace::{EventKind, TraceLayer, Tracer};

use crate::pool::RemotePool;

/// How many copies of each offloaded segment the fabric keeps, and in
/// what form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedundancyPolicy {
    /// One copy on one node — a node death loses the segment.
    None,
    /// `k` full copies on `k` distinct nodes; any one copy recovers.
    Mirror {
        /// Total copies, including the primary. `k = 1` behaves like
        /// [`RedundancyPolicy::None`].
        k: u32,
    },
    /// `data + parity` fragments on distinct nodes; any `data` of them
    /// reconstruct the segment. Overheads are modeled (capacity factor
    /// `(data+parity)/data`, same for write bandwidth, plus a
    /// reconstruction-latency term on degraded reads) — no real coding.
    ErasureCoded {
        /// Data fragments (the recovery threshold).
        data: u32,
        /// Parity fragments.
        parity: u32,
    },
}

impl RedundancyPolicy {
    /// `true` for the no-redundancy scheme.
    pub fn is_none(&self) -> bool {
        matches!(self, RedundancyPolicy::None)
    }

    /// Total fragments (full copies count as one fragment each).
    pub fn fragments(&self) -> u32 {
        match *self {
            RedundancyPolicy::None => 1,
            RedundancyPolicy::Mirror { k } => k.max(1),
            RedundancyPolicy::ErasureCoded { data, parity } => data + parity,
        }
    }

    /// Live fragments needed to recover a segment.
    pub fn threshold(&self) -> u32 {
        match *self {
            RedundancyPolicy::None | RedundancyPolicy::Mirror { .. } => 1,
            RedundancyPolicy::ErasureCoded { data, .. } => data.max(1),
        }
    }

    /// Bytes one fragment stores for a segment of `bytes` bytes.
    pub fn fragment_bytes(&self, bytes: u64) -> u64 {
        match *self {
            RedundancyPolicy::None | RedundancyPolicy::Mirror { .. } => bytes,
            RedundancyPolicy::ErasureCoded { data, .. } => bytes.div_ceil(u64::from(data.max(1))),
        }
    }

    /// Extra bytes stored/transferred beyond the primary copy for a
    /// segment of `bytes` bytes — the redundancy overhead.
    pub fn overhead_bytes(&self, bytes: u64) -> u64 {
        let total = self.fragment_bytes(bytes) * u64::from(self.fragments());
        total.saturating_sub(bytes)
    }

    /// A short stable label for tables and config names.
    pub fn label(&self) -> String {
        match *self {
            RedundancyPolicy::None => "none".into(),
            RedundancyPolicy::Mirror { k } => format!("mirror{k}"),
            RedundancyPolicy::ErasureCoded { data, parity } => format!("ec{data}+{parity}"),
        }
    }
}

/// Configuration of the pool fabric. The default — one node, no
/// redundancy — is the degenerate configuration the platform maps to
/// "no fabric at all".
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Pool nodes in the fabric.
    pub nodes: u32,
    /// Redundancy scheme for offloaded segments.
    pub redundancy: RedundancyPolicy,
    /// Bandwidth budget of the background repair queue (bytes/s of
    /// node-to-node traffic).
    pub repair_bytes_per_sec: u64,
    /// Latency charged on a degraded erasure-coded read (rebuilding the
    /// segment from fragments instead of reading one copy).
    pub reconstruct_micros: u64,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            nodes: 1,
            redundancy: RedundancyPolicy::None,
            // 64 MiB/s keeps repair slow enough that MTTR is visible at
            // simulation scale without decaying into "never repairs".
            repair_bytes_per_sec: 64 << 20,
            reconstruct_micros: 500,
        }
    }
}

impl FabricConfig {
    /// `true` for the single-node, no-redundancy configuration that must
    /// behave exactly like the pre-fabric pool (the platform then skips
    /// constructing a fabric entirely).
    pub fn is_degenerate(&self) -> bool {
        self.nodes <= 1 && self.redundancy.is_none()
    }

    /// Checks internal consistency, returning one message per problem
    /// (empty = valid). Wired into the drivers' exit-2 startup check.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.nodes == 0 {
            problems.push("fabric config: need at least one pool node".into());
        }
        match self.redundancy {
            RedundancyPolicy::None => {}
            RedundancyPolicy::Mirror { k } => {
                if k == 0 {
                    problems.push("fabric config: Mirror{k} needs k >= 1".into());
                }
                if k > self.nodes {
                    problems.push(format!(
                        "fabric config: Mirror{{k={k}}} needs k distinct nodes but the fabric has {}",
                        self.nodes
                    ));
                }
            }
            RedundancyPolicy::ErasureCoded { data, parity } => {
                if data == 0 {
                    problems.push("fabric config: ErasureCoded needs data >= 1".into());
                }
                if parity == 0 {
                    problems.push(
                        "fabric config: ErasureCoded with parity = 0 adds no redundancy; use None"
                            .into(),
                    );
                }
                if data + parity > self.nodes {
                    problems.push(format!(
                        "fabric config: ErasureCoded data+parity ({}) exceeds pool nodes ({})",
                        data + parity,
                        self.nodes
                    ));
                }
            }
        }
        if !self.redundancy.is_none() && self.repair_bytes_per_sec == 0 {
            problems.push(
                "fabric config: repair bandwidth must be positive when redundancy is enabled"
                    .into(),
            );
        }
        problems
    }
}

/// One owner's offloaded segment: how many bytes, and which pool node
/// holds each replica/fragment. Slot 0 is the primary read path.
#[derive(Debug, Clone, PartialEq)]
struct Segment {
    bytes: u64,
    /// Pool node hosting each fragment slot.
    nodes: Vec<u32>,
    /// Whether the fragment in each slot is intact.
    live: Vec<bool>,
    /// When the segment last lost a fragment (repair-latency anchor).
    degraded_at: SimTime,
}

impl Segment {
    fn live_count(&self) -> u32 {
        self.live.iter().filter(|&&l| l).count() as u32
    }
}

/// One pending re-replication: restore `bytes` into `slot` of `owner`'s
/// segment on node `target` once the repair queue reaches `done_at`.
#[derive(Debug, Clone, PartialEq)]
struct RepairItem {
    owner: u64,
    slot: usize,
    target: u32,
    bytes: u64,
    loss_at: SimTime,
    done_at: SimTime,
}

/// The background repair queue: a serial, bandwidth-budgeted pipe of
/// [`RepairItem`]s. Completion times are assigned at enqueue (the queue
/// drains strictly in order at `repair_bytes_per_sec`), so the timeline
/// is a pure function of the loss events — deterministic across
/// `--jobs` and `--shards`.
#[derive(Debug, Clone, Default)]
struct RepairQueue {
    items: VecDeque<RepairItem>,
    /// When the serial repair pipe frees up.
    tail: SimTime,
}

impl RepairQueue {
    fn enqueue(&mut self, now: SimTime, mut item: RepairItem, bytes_per_sec: u64) -> SimTime {
        let start = self.tail.max(now);
        let micros = (item.bytes as u128 * 1_000_000 / bytes_per_sec.max(1) as u128) as u64;
        self.tail = start.saturating_add(SimDuration::from_micros(micros.max(1)));
        item.done_at = self.tail;
        let done = item.done_at;
        self.items.push_back(item);
        done
    }

    fn backlog_bytes(&self) -> u64 {
        self.items.iter().map(|i| i.bytes).sum()
    }
}

/// What one pool-node death did to the ledger: which owners' segments
/// became unrecoverable (the platform cold-rebuilds those) and how many
/// survived in degraded form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeDownOutcome {
    /// Owners whose segments dropped below the recovery threshold,
    /// id-sorted, with the remote bytes each held.
    pub lost: Vec<(u64, u64)>,
    /// Segments that lost a fragment but stayed recoverable.
    pub degraded: u64,
}

/// A placement/durability ledger over M pool nodes.
///
/// The fabric does not replace [`RemotePool`] — capacity and the host
/// link stay there — it records *where* each owner's segment lives,
/// charges redundancy overheads, decides failover recalls and drives
/// background repair. All iteration is over a `BTreeMap`, so every
/// outcome is deterministic in owner-id order.
#[derive(Debug, Clone)]
pub struct PoolFabric {
    config: FabricConfig,
    alive: Vec<bool>,
    segments: BTreeMap<u64, Segment>,
    repairs: RepairQueue,
    tracker: DurabilityTracker,
    tracer: Tracer,
}

impl PoolFabric {
    /// Creates a fabric with all nodes alive and an empty ledger.
    ///
    /// # Panics
    ///
    /// Panics when the config has zero nodes (validation rejects that
    /// before any run starts).
    pub fn new(config: FabricConfig) -> Self {
        assert!(config.nodes >= 1, "fabric needs at least one pool node");
        let alive = vec![true; config.nodes as usize];
        PoolFabric {
            config,
            alive,
            segments: BTreeMap::new(),
            repairs: RepairQueue::default(),
            tracker: DurabilityTracker::default(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a trace emission handle for pool-layer durability events.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The fabric's configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Pool nodes configured.
    pub fn nodes(&self) -> u32 {
        self.config.nodes
    }

    /// Pool nodes currently alive.
    pub fn nodes_up(&self) -> u32 {
        self.alive.iter().filter(|&&a| a).count() as u32
    }

    /// `true` when every node has died — nothing can be placed.
    pub fn all_nodes_down(&self) -> bool {
        self.nodes_up() == 0
    }

    /// Picks placement nodes for a new segment of `owner`: up to
    /// `fragments` distinct *alive* nodes walked cyclically from
    /// `owner % nodes`. Pure in `(owner, alive set)` — the determinism
    /// anchor for the whole subsystem.
    fn place(&self, owner: u64) -> Vec<u32> {
        let n = self.config.nodes;
        let want = self.config.redundancy.fragments().min(self.nodes_up());
        let start = (owner % u64::from(n)) as u32;
        let mut nodes = Vec::with_capacity(want as usize);
        for step in 0..n {
            let node = (start + step) % n;
            if self.alive[node as usize] {
                nodes.push(node);
                if nodes.len() as u32 == want {
                    break;
                }
            }
        }
        nodes
    }

    /// Records an offload of `bytes` for `owner`, placing the segment on
    /// first contact and pushing the redundancy write-amplification
    /// through the pool's real out link. Returns the extra transfer time
    /// the replicas cost (already folded into link busy-time).
    pub fn on_offload(
        &mut self,
        now: SimTime,
        owner: u64,
        bytes: u64,
        pool: &mut RemotePool,
    ) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        if !self.segments.contains_key(&owner) {
            let nodes = self.place(owner);
            let live = vec![true; nodes.len()];
            self.segments.insert(
                owner,
                Segment {
                    bytes: 0,
                    nodes,
                    live,
                    degraded_at: SimTime::ZERO,
                },
            );
        }
        let seg = self.segments.get_mut(&owner).expect("just inserted");
        seg.bytes += bytes;
        let extra = self.config.redundancy.overhead_bytes(bytes);
        let stall = pool.replicate_out(now, extra);
        if extra > 0 {
            self.tracker.record_replica_out(extra);
        }
        let redundant = self.redundant_bytes();
        self.tracker.note_redundant_bytes(redundant);
        stall
    }

    /// Records `bytes` of `owner`'s segment returning home (prefetch or
    /// demand recall). Fully drained segments leave the ledger.
    pub fn on_page_in(&mut self, owner: u64, bytes: u64) {
        let Some(seg) = self.segments.get_mut(&owner) else {
            return;
        };
        seg.bytes = seg.bytes.saturating_sub(bytes);
        if seg.bytes == 0 {
            self.segments.remove(&owner);
        }
    }

    /// Drops `owner`'s segment from the ledger (container recycled; the
    /// caller discards the pool bytes).
    pub fn on_discard(&mut self, owner: u64) {
        self.segments.remove(&owner);
    }

    /// `true` when the fabric still tracks a segment for `owner`.
    pub fn has_segment(&self, owner: u64) -> bool {
        self.segments.contains_key(&owner)
    }

    /// `true` when `owner`'s primary fragment (slot 0) is gone, so the
    /// plain recall path would read from a dead node.
    pub fn primary_down(&self, owner: u64) -> bool {
        self.segments
            .get(&owner)
            .is_some_and(|s| !s.live.first().copied().unwrap_or(false))
    }

    /// `true` when enough fragments survive to recover `owner`'s segment.
    pub fn recoverable(&self, owner: u64) -> bool {
        self.segments
            .get(&owner)
            .is_some_and(|s| s.live_count() >= self.config.redundancy.threshold())
    }

    /// `true` when a recall of `owner` can detour around the primary
    /// path: the scheme keeps more than one fragment and enough of them
    /// survive to serve the read. Single-copy schemes never detour.
    pub fn can_failover(&self, owner: u64) -> bool {
        self.config.redundancy.fragments() > 1 && self.recoverable(owner)
    }

    /// Extra latency a recall of `owner` pays right now: the modeled
    /// reconstruction term when an erasure-coded segment is read in
    /// degraded mode (any fragment missing). Mirrors read one surviving
    /// copy and pay nothing extra.
    pub fn reconstruct_penalty(&self, owner: u64) -> SimDuration {
        let Some(seg) = self.segments.get(&owner) else {
            return SimDuration::ZERO;
        };
        let degraded = seg.live_count() < seg.live.len() as u32;
        match self.config.redundancy {
            RedundancyPolicy::ErasureCoded { .. } if degraded => {
                SimDuration::from_micros(self.config.reconstruct_micros)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Records a recall served from surviving replicas/fragments after
    /// the primary path failed. Returns the reconstruction penalty to
    /// add to the transfer stall (the caller already ran the transfer).
    pub fn on_failover_recall(&mut self, owner: u64, bytes: u64) -> SimDuration {
        let penalty = self.reconstruct_penalty(owner);
        let node = self
            .segments
            .get(&owner)
            .and_then(|s| {
                s.nodes
                    .iter()
                    .zip(&s.live)
                    .find(|&(_, &l)| l)
                    .map(|(&n, _)| u64::from(n))
            })
            .unwrap_or(0);
        self.tracker.record_failover(bytes);
        if self.tracer.wants(TraceLayer::Pool) {
            self.tracer.emit(
                Some(owner),
                None,
                EventKind::ReplicaRecall {
                    node,
                    bytes,
                    reconstruct_us: penalty.as_micros(),
                },
            );
        }
        self.on_page_in(owner, bytes);
        penalty
    }

    /// Records `owner`'s segment as unrecoverable at recall time (e.g. a
    /// give-up with no surviving replica); the caller discards the pool
    /// bytes and cold-rebuilds.
    pub fn on_recall_lost(&mut self, owner: u64) {
        if let Some(seg) = self.segments.remove(&owner) {
            self.tracker.record_loss(seg.bytes);
        }
    }

    /// Kills pool node `node`: every fragment it hosted dies. Segments
    /// below the recovery threshold are dropped from the ledger and
    /// returned as `lost` (the platform recycles their owners);
    /// surviving segments stay degraded — recalls fail over to the
    /// surviving fragments — and enter the repair queue, one item per
    /// dead slot.
    pub fn node_down(&mut self, now: SimTime, node: u32) -> NodeDownOutcome {
        let mut outcome = NodeDownOutcome::default();
        let idx = node as usize;
        if idx >= self.alive.len() || !self.alive[idx] {
            return outcome; // unknown or already-dead node: nothing to do
        }
        self.alive[idx] = false;
        self.tracker.record_node_loss();
        let threshold = self.config.redundancy.threshold();
        let mut repairs: Vec<(u64, usize, u64)> = Vec::new();
        let mut dead: Vec<u64> = Vec::new();
        for (&owner, seg) in self.segments.iter_mut() {
            let mut hit = false;
            for (slot, host) in seg.nodes.iter().enumerate() {
                if *host == node && seg.live[slot] {
                    seg.live[slot] = false;
                    hit = true;
                }
            }
            if !hit {
                continue;
            }
            seg.degraded_at = now;
            if seg.live_count() < threshold {
                dead.push(owner);
            } else {
                outcome.degraded += 1;
                self.tracker.record_avoided_rebuild();
                // The primary slot stays dead until repair restores it:
                // recalls in the meantime take the failover path, which
                // is what makes the redundancy dividend observable.
                let frag = self.config.redundancy.fragment_bytes(seg.bytes);
                for (slot, &l) in seg.live.iter().enumerate() {
                    if !l {
                        repairs.push((owner, slot, frag));
                    }
                }
            }
        }
        for owner in dead {
            let seg = self.segments.remove(&owner).expect("collected above");
            self.tracker.record_loss(seg.bytes);
            outcome.lost.push((owner, seg.bytes));
        }
        if self.tracer.wants(TraceLayer::Pool) {
            self.tracer.emit(
                None,
                None,
                EventKind::PoolNodeDown {
                    node: u64::from(node),
                    lost_segments: outcome.lost.len() as u64,
                    degraded_segments: outcome.degraded,
                },
            );
        }
        for (owner, slot, bytes) in repairs {
            self.enqueue_repair(now, owner, slot, bytes);
        }
        self.tracker
            .note_under_replicated(self.under_replicated() as u64);
        outcome
    }

    /// Schedules re-replication of one dead slot onto the lowest-id
    /// alive node not already hosting a fragment of the segment. When no
    /// such node exists the slot stays dead (abandoned, counted).
    fn enqueue_repair(&mut self, now: SimTime, owner: u64, slot: usize, bytes: u64) {
        let Some(seg) = self.segments.get(&owner) else {
            return;
        };
        let hosting: Vec<u32> = seg
            .nodes
            .iter()
            .zip(&seg.live)
            .filter(|&(_, &l)| l)
            .map(|(&n, _)| n)
            .collect();
        let target =
            (0..self.config.nodes).find(|n| self.alive[*n as usize] && !hosting.contains(n));
        let Some(target) = target else {
            self.tracker.record_repair_abandoned();
            return;
        };
        let done = self.repairs.enqueue(
            now,
            RepairItem {
                owner,
                slot,
                target,
                bytes,
                loss_at: now,
                done_at: SimTime::ZERO, // assigned by enqueue
            },
            self.config.repair_bytes_per_sec,
        );
        debug_assert!(done >= now);
        if self.tracer.wants(TraceLayer::Pool) {
            self.tracer.emit(
                Some(owner),
                None,
                EventKind::RepairStart {
                    node: u64::from(target),
                    bytes,
                    backlog_bytes: self.repairs.backlog_bytes(),
                },
            );
        }
    }

    /// Completes every repair item due by `now`. A completed item only
    /// applies when the segment still exists, the slot is still dead,
    /// the target is still alive and the segment is still below full
    /// replication — repair never over-replicates.
    pub fn advance(&mut self, now: SimTime) {
        while let Some(front) = self.repairs.items.front() {
            if front.done_at > now {
                break;
            }
            let item = self.repairs.items.pop_front().expect("peeked above");
            let applied = match self.segments.get_mut(&item.owner) {
                Some(seg)
                    if item.slot < seg.live.len()
                        && !seg.live[item.slot]
                        && self.alive[item.target as usize]
                        && seg.live_count() < seg.live.len() as u32 =>
                {
                    seg.nodes[item.slot] = item.target;
                    seg.live[item.slot] = true;
                    true
                }
                _ => false,
            };
            if applied {
                let mttr = item.done_at.saturating_since(item.loss_at);
                self.tracker.record_repair(item.bytes, mttr);
                if self.tracer.wants(TraceLayer::Pool) {
                    self.tracer.emit(
                        Some(item.owner),
                        None,
                        EventKind::RepairDone {
                            node: u64::from(item.target),
                            bytes: item.bytes,
                            mttr_us: mttr.as_micros(),
                        },
                    );
                }
            } else {
                self.tracker.record_repair_abandoned();
            }
        }
    }

    /// Segments currently holding fewer live fragments than configured.
    pub fn under_replicated(&self) -> usize {
        self.segments
            .values()
            .filter(|s| s.live_count() < self.config.redundancy.fragments().min(self.config.nodes))
            .count()
    }

    /// Bytes of pending repair traffic not yet applied.
    pub fn repair_backlog_bytes(&self) -> u64 {
        self.repairs.backlog_bytes()
    }

    /// Extra capacity currently held for redundancy across all segments.
    pub fn redundant_bytes(&self) -> u64 {
        self.segments
            .values()
            .map(|s| {
                let frag = self.config.redundancy.fragment_bytes(s.bytes);
                (frag * u64::from(s.live_count())).saturating_sub(s.bytes)
            })
            .sum()
    }

    /// Bytes stored on pool node `node` (live fragments only).
    pub fn node_stored_bytes(&self, node: u32) -> u64 {
        self.segments
            .values()
            .map(|s| {
                let frag = self.config.redundancy.fragment_bytes(s.bytes);
                s.nodes
                    .iter()
                    .zip(&s.live)
                    .filter(|&(&n, &l)| n == node && l)
                    .count() as u64
                    * frag
            })
            .sum()
    }

    /// A point-in-time attribution of the fabric's occupancy overhead:
    /// every byte the pool tier holds beyond the primary copies, split
    /// by cause. Primary bytes themselves are the pool's own ledger
    /// ([`crate::RemotePool::used_bytes`]); this snapshot covers only
    /// the premium a durable fabric adds on top.
    pub fn occupancy(&self) -> FabricOccupancy {
        FabricOccupancy {
            redundant_bytes: self.redundant_bytes(),
            repair_backlog_bytes: self.repair_backlog_bytes(),
            under_replicated_segments: self.under_replicated() as u64,
        }
    }

    /// The cumulative durability counters.
    pub fn tracker(&self) -> &DurabilityTracker {
        &self.tracker
    }
}

/// A point-in-time occupancy-overhead attribution of a pool fabric —
/// see [`PoolFabric::occupancy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricOccupancy {
    /// Replica/parity bytes held beyond each segment's primary copy.
    pub redundant_bytes: u64,
    /// Bytes of pending repair traffic not yet applied.
    pub repair_backlog_bytes: u64,
    /// Segments currently holding fewer live fragments than configured.
    pub under_replicated_segments: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;

    fn mirror2(nodes: u32) -> PoolFabric {
        PoolFabric::new(FabricConfig {
            nodes,
            redundancy: RedundancyPolicy::Mirror { k: 2 },
            ..FabricConfig::default()
        })
    }

    fn pool() -> RemotePool {
        RemotePool::new(PoolConfig::slow_test_pool())
    }

    #[test]
    fn redundancy_policy_arithmetic() {
        let none = RedundancyPolicy::None;
        assert_eq!(none.fragments(), 1);
        assert_eq!(none.threshold(), 1);
        assert_eq!(none.overhead_bytes(4096), 0);
        let m3 = RedundancyPolicy::Mirror { k: 3 };
        assert_eq!(m3.fragments(), 3);
        assert_eq!(m3.threshold(), 1);
        assert_eq!(m3.overhead_bytes(4096), 8192);
        let ec = RedundancyPolicy::ErasureCoded { data: 2, parity: 1 };
        assert_eq!(ec.fragments(), 3);
        assert_eq!(ec.threshold(), 2);
        assert_eq!(ec.fragment_bytes(4096), 2048);
        assert_eq!(ec.overhead_bytes(4096), 2048);
        assert_eq!(ec.label(), "ec2+1");
    }

    #[test]
    fn validate_flags_inconsistent_configs() {
        let ok = FabricConfig {
            nodes: 3,
            redundancy: RedundancyPolicy::ErasureCoded { data: 2, parity: 1 },
            ..FabricConfig::default()
        };
        assert!(ok.validate().is_empty());
        let mirror_too_wide = FabricConfig {
            nodes: 2,
            redundancy: RedundancyPolicy::Mirror { k: 3 },
            ..FabricConfig::default()
        };
        assert!(mirror_too_wide
            .validate()
            .iter()
            .any(|p| p.contains("Mirror")));
        let ec_too_wide = FabricConfig {
            nodes: 3,
            redundancy: RedundancyPolicy::ErasureCoded { data: 3, parity: 1 },
            ..FabricConfig::default()
        };
        assert!(ec_too_wide
            .validate()
            .iter()
            .any(|p| p.contains("exceeds pool nodes")));
        let no_repair = FabricConfig {
            nodes: 3,
            redundancy: RedundancyPolicy::Mirror { k: 2 },
            repair_bytes_per_sec: 0,
            ..FabricConfig::default()
        };
        assert!(no_repair
            .validate()
            .iter()
            .any(|p| p.contains("repair bandwidth")));
        assert!(FabricConfig::default().is_degenerate());
        assert!(FabricConfig::default().validate().is_empty());
    }

    #[test]
    fn occupancy_snapshot_matches_component_accessors() {
        let mut f = mirror2(3);
        let mut p = pool();
        assert_eq!(f.occupancy(), FabricOccupancy::default());
        f.on_offload(SimTime::ZERO, 1, 1 << 20, &mut p);
        let occ = f.occupancy();
        assert_eq!(
            occ.redundant_bytes,
            1 << 20,
            "mirror k=2 holds one extra copy"
        );
        assert_eq!(occ.repair_backlog_bytes, 0);
        assert_eq!(occ.under_replicated_segments, 0);
        // Losing a node queues repair traffic and degrades the segment.
        let node = f.segments.get(&1).unwrap().nodes[0];
        f.node_down(SimTime::ZERO, node);
        let occ = f.occupancy();
        assert_eq!(occ.redundant_bytes, f.redundant_bytes());
        assert_eq!(occ.repair_backlog_bytes, f.repair_backlog_bytes());
        assert_eq!(occ.under_replicated_segments, f.under_replicated() as u64);
        assert!(occ.repair_backlog_bytes > 0 || occ.under_replicated_segments > 0);
    }

    #[test]
    fn placement_is_deterministic_and_anti_affine() {
        let mut f = mirror2(4);
        let mut p = pool();
        f.on_offload(SimTime::ZERO, 6, 4096, &mut p);
        let seg = f.segments.get(&6).unwrap();
        assert_eq!(seg.nodes, vec![2, 3], "cyclic from owner % nodes");
        assert_eq!(seg.nodes.len(), 2);
        let mut g = mirror2(4);
        let mut q = pool();
        g.on_offload(SimTime::ZERO, 6, 4096, &mut q);
        assert_eq!(f.segments, g.segments, "pure function of (owner, alive)");
        // Placement skips dead nodes.
        let mut h = mirror2(4);
        h.node_down(SimTime::ZERO, 2);
        let mut r = pool();
        h.on_offload(SimTime::from_secs(1), 6, 4096, &mut r);
        let seg = h.segments.get(&6).unwrap();
        assert_eq!(seg.nodes, vec![3, 0], "dead node 2 skipped");
    }

    #[test]
    fn offload_charges_replica_overhead_on_the_real_link() {
        let mut f = mirror2(2);
        let mut p = pool();
        let before = p.stats();
        let stall = f.on_offload(SimTime::ZERO, 0, 1 << 20, &mut p);
        assert!(stall > SimDuration::ZERO, "replica copy occupies the link");
        assert_eq!(f.tracker().replica_bytes_out, 1 << 20);
        assert_eq!(
            p.stats(),
            before,
            "redundancy traffic never leaks into PoolStats"
        );
    }

    #[test]
    fn mirror_survives_one_node_ec_needs_threshold() {
        let mut f = mirror2(3);
        let mut p = pool();
        f.on_offload(SimTime::ZERO, 1, 8192, &mut p);
        let outcome = f.node_down(SimTime::from_secs(1), 1);
        assert!(outcome.lost.is_empty());
        assert_eq!(outcome.degraded, 1);
        assert!(f.recoverable(1));
        assert!(
            f.primary_down(1) && f.can_failover(1),
            "recalls detour to the survivor until repair restores slot 0"
        );

        let mut ec = PoolFabric::new(FabricConfig {
            nodes: 3,
            redundancy: RedundancyPolicy::ErasureCoded { data: 2, parity: 1 },
            ..FabricConfig::default()
        });
        let mut q = pool();
        ec.on_offload(SimTime::ZERO, 0, 8192, &mut q);
        assert!(ec.node_down(SimTime::from_secs(1), 0).lost.is_empty());
        assert!(ec.recoverable(0), "2 of 3 fragments survive");
        assert!(ec.reconstruct_penalty(0) > SimDuration::ZERO);
        let outcome = ec.node_down(SimTime::from_secs(2), 1);
        assert_eq!(outcome.lost, vec![(0, 8192)], "below data fragments");
        assert!(!ec.has_segment(0));
        assert_eq!(ec.tracker().segments_lost, 1);
    }

    #[test]
    fn none_policy_loses_segments_with_their_node() {
        let mut f = PoolFabric::new(FabricConfig {
            nodes: 2,
            redundancy: RedundancyPolicy::None,
            ..FabricConfig::default()
        });
        let mut p = pool();
        f.on_offload(SimTime::ZERO, 0, 4096, &mut p); // node 0
        f.on_offload(SimTime::ZERO, 1, 4096, &mut p); // node 1
        let outcome = f.node_down(SimTime::from_secs(1), 0);
        assert_eq!(outcome.lost, vec![(0, 4096)]);
        assert_eq!(outcome.degraded, 0);
        assert!(f.has_segment(1), "other node's segment untouched");
    }

    #[test]
    fn repair_restores_redundancy_at_budgeted_pace() {
        let mut f = PoolFabric::new(FabricConfig {
            nodes: 3,
            redundancy: RedundancyPolicy::Mirror { k: 2 },
            repair_bytes_per_sec: 1 << 20, // 1 MiB/s
            ..FabricConfig::default()
        });
        let mut p = pool();
        f.on_offload(SimTime::ZERO, 0, 1 << 20, &mut p); // nodes 0,1
        f.node_down(SimTime::from_secs(10), 0);
        assert_eq!(f.under_replicated(), 1);
        assert_eq!(f.repair_backlog_bytes(), 1 << 20);
        // 1 MiB at 1 MiB/s: not done a half-second in, done after 1 s.
        f.advance(SimTime::from_millis(10_500));
        assert_eq!(f.under_replicated(), 1);
        f.advance(SimTime::from_secs(12));
        assert_eq!(f.under_replicated(), 0);
        assert_eq!(f.repair_backlog_bytes(), 0);
        assert_eq!(f.tracker().repairs_completed, 1);
        assert_eq!(f.tracker().mean_mttr(), Some(SimDuration::from_secs(1)));
        let seg = f.segments.get(&0).unwrap();
        assert_eq!(seg.live_count(), 2, "never over-replicates");
        assert!(seg.nodes.contains(&2), "repaired onto the spare node");
    }

    #[test]
    fn repair_abandons_vanished_segments() {
        let mut f = mirror2(3);
        let mut p = pool();
        f.on_offload(SimTime::ZERO, 0, 4096, &mut p);
        f.node_down(SimTime::from_secs(1), 0);
        f.on_page_in(0, 4096); // segment fully recalled before repair lands
        f.advance(SimTime::from_mins(10));
        assert_eq!(f.tracker().repairs_completed, 0);
        assert_eq!(f.tracker().repairs_abandoned, 1);
    }

    #[test]
    fn failover_recall_counts_and_drains() {
        let mut f = mirror2(2);
        let mut p = pool();
        f.on_offload(SimTime::ZERO, 0, 8192, &mut p);
        f.node_down(SimTime::from_secs(1), 0);
        assert!(f.recoverable(0));
        let penalty = f.on_failover_recall(0, 8192);
        assert_eq!(penalty, SimDuration::ZERO, "mirror reads pay no rebuild");
        assert_eq!(f.tracker().failover_recalls, 1);
        assert_eq!(f.tracker().bytes_recovered, 8192);
        assert!(!f.has_segment(0), "fully recalled");
    }

    #[test]
    fn dead_and_unknown_nodes_are_noops() {
        let mut f = mirror2(2);
        f.node_down(SimTime::ZERO, 1);
        let again = f.node_down(SimTime::from_secs(1), 1);
        assert_eq!(again, NodeDownOutcome::default());
        let unknown = f.node_down(SimTime::from_secs(1), 9);
        assert_eq!(unknown, NodeDownOutcome::default());
        assert_eq!(f.nodes_up(), 1);
        assert_eq!(f.tracker().nodes_lost, 1);
    }

    // -- conservation proptest (satellite) ----------------------------
    //
    // Drives the fabric through arbitrary interleavings of offloads,
    // node losses, recalls and repair advances while mirroring it with
    // a trivial oracle (owner -> set of nodes with live fragments).
    // Invariants: `recoverable` answers exactly "live fragments >=
    // threshold"; repair never over-replicates; per-node stored bytes
    // always reconcile with the ledger.
    proptest::proptest! {
        #[test]
        fn prop_fabric_conserves_fragments(seed in 0u64..500, steps in 1usize..60) {
            use faasmem_sim::SimRng;
            let mut rng = SimRng::seed_from(seed);
            let schemes = [
                RedundancyPolicy::None,
                RedundancyPolicy::Mirror { k: 2 },
                RedundancyPolicy::Mirror { k: 3 },
                RedundancyPolicy::ErasureCoded { data: 2, parity: 1 },
            ];
            let scheme = schemes[(rng.next_u64() % 4) as usize];
            let nodes = scheme.fragments().max(2) + (rng.next_u64() % 2) as u32;
            let config = FabricConfig {
                nodes,
                redundancy: scheme,
                repair_bytes_per_sec: 1 << 20,
                ..FabricConfig::default()
            };
            let mut fabric = PoolFabric::new(config.clone());
            let mut p = RemotePool::new(PoolConfig::slow_test_pool());
            // Oracle: owner -> live fragment hosts; plus the alive set.
            let mut oracle: std::collections::BTreeMap<u64, Vec<u32>> =
                std::collections::BTreeMap::new();
            let mut alive: Vec<bool> = vec![true; nodes as usize];
            let mut t = SimTime::ZERO;
            for _ in 0..steps {
                t = t.saturating_add(SimDuration::from_millis(100 + rng.next_u64() % 2_000));
                match rng.next_u64() % 5 {
                    0 | 1 => {
                        // Offload for a small owner population.
                        let owner = rng.next_u64() % 6;
                        if alive.iter().any(|&a| a) {
                            let fresh = !fabric.has_segment(owner);
                            fabric.on_offload(t, owner, 4096, &mut p);
                            if fresh {
                                let seg = fabric.segments.get(&owner).unwrap();
                                oracle.insert(owner, seg.nodes.clone());
                            }
                        }
                    }
                    2 => {
                        let node = (rng.next_u64() % u64::from(nodes)) as u32;
                        let outcome = fabric.node_down(t, node);
                        if alive[node as usize] {
                            alive[node as usize] = false;
                            for hosts in oracle.values_mut() {
                                hosts.retain(|&n| n != node);
                            }
                            for (owner, _) in &outcome.lost {
                                oracle.remove(owner);
                            }
                        }
                    }
                    3 => {
                        // Recall (failover when degraded, plain otherwise).
                        let owner = rng.next_u64() % 6;
                        if fabric.recoverable(owner) {
                            fabric.on_failover_recall(owner, 4096);
                            if !fabric.has_segment(owner) {
                                oracle.remove(&owner);
                            }
                        } else if fabric.has_segment(owner) {
                            fabric.on_recall_lost(owner);
                            oracle.remove(&owner);
                        }
                    }
                    _ => {
                        fabric.advance(t);
                        // Re-sync the oracle with applied repairs: hosts
                        // are exactly the live slots.
                        for (owner, seg) in &fabric.segments {
                            let hosts: Vec<u32> = seg
                                .nodes
                                .iter()
                                .zip(&seg.live)
                                .filter(|&(_, &l)| l)
                                .map(|(&n, _)| n)
                                .collect();
                            oracle.insert(*owner, hosts);
                        }
                    }
                }
                // -- invariants after every step ----------------------
                for (owner, seg) in &fabric.segments {
                    let live = seg.live_count();
                    proptest::prop_assert_eq!(
                        fabric.recoverable(*owner),
                        live >= config.redundancy.threshold(),
                        "recoverable iff surviving fragments >= threshold"
                    );
                    proptest::prop_assert!(
                        live <= config.redundancy.fragments(),
                        "repair must never over-replicate"
                    );
                    // Anti-affinity: live fragments on distinct nodes.
                    let mut hosts: Vec<u32> = seg
                        .nodes
                        .iter()
                        .zip(&seg.live)
                        .filter(|&(_, &l)| l)
                        .map(|(&n, _)| n)
                        .collect();
                    let total = hosts.len();
                    hosts.sort_unstable();
                    hosts.dedup();
                    proptest::prop_assert_eq!(hosts.len(), total, "distinct hosts");
                    // Live fragments only on alive nodes.
                    for n in &hosts {
                        proptest::prop_assert!(fabric.alive[*n as usize]);
                    }
                    // Oracle agreement on the host set (oracle lags
                    // repairs until the next advance step, so only
                    // check it is a subset relation in that window).
                    if let Some(oracle_hosts) = oracle.get(owner) {
                        let mut o = oracle_hosts.clone();
                        o.sort_unstable();
                        for n in &o {
                            proptest::prop_assert!(
                                hosts.contains(n),
                                "fabric dropped a fragment the oracle still has"
                            );
                        }
                    }
                }
                // Ledger-level reconciliation: per-node bytes sum to
                // fragment bytes of live slots.
                let by_node: u64 = (0..nodes).map(|n| fabric.node_stored_bytes(n)).sum();
                let by_segment: u64 = fabric
                    .segments
                    .values()
                    .map(|s| {
                        config.redundancy.fragment_bytes(s.bytes) * u64::from(s.live_count())
                    })
                    .sum();
                proptest::prop_assert_eq!(by_node, by_segment);
            }
        }
    }
}
