//! Global offload-bandwidth control (paper §6.2).
//!
//! When a burst makes many containers enter semi-warm simultaneously, their
//! combined gradual offloading can contend for the remote link. FaaSMem
//! "monitors the global remote bandwidth in real-time, and uniformly
//! reduces the offload speed of all containers when the bandwidth
//! approaches the limit". [`BandwidthGovernor`] implements that control
//! loop as a piecewise-linear throttle on a sliding usage estimate.

use faasmem_sim::{SimDuration, SimTime};

/// Uniformly throttles per-container offload rates as aggregate remote
/// bandwidth approaches the link limit.
///
/// Usage is estimated over a sliding window; the throttle factor is 1.0
/// below `soft_fraction` of capacity and decays linearly to `min_factor`
/// at full capacity.
///
/// # Examples
///
/// ```
/// use faasmem_pool::BandwidthGovernor;
/// use faasmem_sim::{SimDuration, SimTime};
///
/// let mut gov = BandwidthGovernor::new(1_000_000, SimDuration::from_secs(1));
/// gov.record(SimTime::ZERO, 100_000); // 10% of capacity: unthrottled
/// assert_eq!(gov.throttle_factor(SimTime::from_millis(500)), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthGovernor {
    capacity_bytes_per_sec: u64,
    window: SimDuration,
    soft_fraction: f64,
    min_factor: f64,
    /// (time, bytes) records inside the sliding window, oldest first.
    records: std::collections::VecDeque<(SimTime, u64)>,
    window_bytes: u64,
}

impl BandwidthGovernor {
    /// Creates a governor for a link of the given capacity with a sliding
    /// estimation `window`. Uses the default soft threshold (80% of
    /// capacity) and minimum factor (0.05).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes_per_sec` is zero or `window` is zero.
    pub fn new(capacity_bytes_per_sec: u64, window: SimDuration) -> Self {
        assert!(capacity_bytes_per_sec > 0, "capacity must be positive");
        assert!(!window.is_zero(), "window must be positive");
        BandwidthGovernor {
            capacity_bytes_per_sec,
            window,
            soft_fraction: 0.8,
            min_factor: 0.05,
            records: std::collections::VecDeque::new(),
            window_bytes: 0,
        }
    }

    /// Overrides the soft threshold (fraction of capacity at which
    /// throttling begins) and the floor factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < soft_fraction <= 1` and `0 < min_factor <= 1`.
    pub fn with_thresholds(mut self, soft_fraction: f64, min_factor: f64) -> Self {
        assert!(soft_fraction > 0.0 && soft_fraction <= 1.0);
        assert!(min_factor > 0.0 && min_factor <= 1.0);
        self.soft_fraction = soft_fraction;
        self.min_factor = min_factor;
        self
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = SimTime::from_micros(now.as_micros().saturating_sub(self.window.as_micros()));
        while let Some(&(t, bytes)) = self.records.front() {
            if t < cutoff {
                self.records.pop_front();
                self.window_bytes -= bytes;
            } else {
                break;
            }
        }
    }

    /// Records `bytes` of remote traffic at `now`.
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.evict(now);
        self.records.push_back((now, bytes));
        self.window_bytes += bytes;
    }

    /// Estimated aggregate bandwidth over the sliding window ending at
    /// `now`, in bytes/second.
    pub fn current_usage(&mut self, now: SimTime) -> f64 {
        self.evict(now);
        self.window_bytes as f64 / self.window.as_secs_f64()
    }

    /// The uniform rate multiplier containers should apply to their
    /// gradual-offload speed: 1.0 when comfortably below capacity,
    /// decaying linearly to the floor as usage reaches capacity.
    pub fn throttle_factor(&mut self, now: SimTime) -> f64 {
        let usage = self.current_usage(now);
        let capacity = self.capacity_bytes_per_sec as f64;
        let soft = self.soft_fraction * capacity;
        if usage <= soft {
            return 1.0;
        }
        if usage >= capacity {
            return self.min_factor;
        }
        let frac = (usage - soft) / (capacity - soft);
        (1.0 - frac * (1.0 - self.min_factor)).max(self.min_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gov() -> BandwidthGovernor {
        BandwidthGovernor::new(1_000_000, SimDuration::from_secs(1))
    }

    #[test]
    fn unused_link_is_unthrottled() {
        let mut g = gov();
        assert_eq!(g.throttle_factor(SimTime::from_secs(5)), 1.0);
        assert_eq!(g.current_usage(SimTime::from_secs(5)), 0.0);
    }

    #[test]
    fn below_soft_threshold_unthrottled() {
        let mut g = gov();
        g.record(SimTime::from_secs(1), 700_000); // 70% over 1s window
        assert_eq!(g.throttle_factor(SimTime::from_secs(1)), 1.0);
    }

    #[test]
    fn above_soft_threshold_throttles_linearly() {
        let mut g = gov();
        g.record(SimTime::from_secs(1), 900_000); // 90%: halfway soft→cap
        let f = g.throttle_factor(SimTime::from_secs(1));
        assert!(f < 1.0 && f > 0.05);
        assert!((f - 0.525).abs() < 1e-9, "expected midpoint, got {f}");
    }

    #[test]
    fn at_capacity_hits_floor() {
        let mut g = gov();
        g.record(SimTime::from_secs(1), 2_000_000);
        assert_eq!(g.throttle_factor(SimTime::from_secs(1)), 0.05);
    }

    #[test]
    fn old_records_slide_out() {
        let mut g = gov();
        g.record(SimTime::from_secs(1), 1_000_000);
        assert_eq!(g.throttle_factor(SimTime::from_secs(1)), 0.05);
        // Three seconds later the window is clean again.
        assert_eq!(g.throttle_factor(SimTime::from_secs(4)), 1.0);
    }

    #[test]
    fn custom_thresholds_respected() {
        let mut g =
            BandwidthGovernor::new(1_000_000, SimDuration::from_secs(1)).with_thresholds(0.5, 0.2);
        g.record(SimTime::from_secs(1), 600_000);
        let f = g.throttle_factor(SimTime::from_secs(1));
        assert!(f < 1.0);
        g.record(SimTime::from_secs(1), 1_000_000);
        assert_eq!(g.throttle_factor(SimTime::from_secs(1)), 0.2);
    }

    #[test]
    fn usage_estimate_scales_with_window() {
        let mut g = BandwidthGovernor::new(1_000_000, SimDuration::from_secs(2));
        g.record(SimTime::from_secs(1), 1_000_000);
        // 1 MB over a 2 s window = 0.5 MB/s.
        assert!((g.current_usage(SimTime::from_secs(1)) - 500_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = BandwidthGovernor::new(0, SimDuration::from_secs(1));
    }
}
