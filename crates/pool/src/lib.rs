#![warn(missing_docs)]

//! Remote memory pool model for the FaaSMem reproduction.
//!
//! The paper's testbed offloads pages over Fastswap: a modified Linux swap
//! path that pages out to a remote memory node across 56 Gbps InfiniBand
//! (§7, §8.1). FaaSMem's policies interact with that substrate through
//! exactly three observable behaviours, all reproduced here:
//!
//! 1. **Page-out cost** — writing a page to the pool occupies link
//!    bandwidth ([`RdmaLink`]) and completes after a small base latency.
//! 2. **Page-in (fault) penalty** — touching a remote page stalls the
//!    request for a round-trip plus transfer plus any queueing when the
//!    link is busy.
//! 3. **Bandwidth saturation** — when aggregate traffic approaches link
//!    capacity, FaaSMem uniformly slows every container's semi-warm
//!    offload rate (§6.2); [`BandwidthGovernor`] implements that control.
//!
//! [`RemotePool`] composes a capacity-limited remote node with one
//! bidirectional link and cumulative traffic accounting.
//!
//! # Examples
//!
//! ```
//! use faasmem_pool::{PoolConfig, RemotePool};
//! use faasmem_sim::SimTime;
//!
//! let mut pool = RemotePool::new(PoolConfig::infiniband_56g());
//! let cost = pool.page_out(SimTime::ZERO, 256, 4096).unwrap(); // 1 MiB out
//! assert!(cost.as_micros() > 0);
//! assert_eq!(pool.used_bytes(), 256 * 4096);
//! ```

pub mod degraded;
pub mod fabric;
pub mod governor;
pub mod link;
pub mod pool;
pub mod retry;

pub use degraded::DegradedLink;
pub use fabric::{FabricConfig, FabricOccupancy, NodeDownOutcome, PoolFabric, RedundancyPolicy};
pub use governor::BandwidthGovernor;
pub use link::RdmaLink;
pub use pool::{PoolConfig, PoolError, PoolStats, RemotePool, ShardTraffic};
pub use retry::{CircuitBreaker, RecallOutcome, RemoteFaultPolicy};
