//! A FIFO queueing model of one RDMA link direction.

use faasmem_sim::{SimDuration, SimTime};

/// One direction of an RDMA link, modelled as a FIFO server with a fixed
/// service rate (bytes/second) plus a constant per-operation base latency.
///
/// Transfers queue behind each other: a transfer submitted while the link
/// is still draining earlier traffic starts when the link frees up. This
/// reproduces the paper's observation that "there is little communication
/// latency increase until the bandwidth is saturated" (§9) — below
/// saturation the queue is empty and each transfer sees only its own
/// service time.
///
/// # Examples
///
/// ```
/// use faasmem_pool::RdmaLink;
/// use faasmem_sim::SimTime;
///
/// // 1 MiB/s link for easy arithmetic.
/// let mut link = RdmaLink::new(1024 * 1024, 0);
/// let d1 = link.transfer(SimTime::ZERO, 512 * 1024); // half a second
/// assert_eq!(d1.as_secs_f64(), 0.5);
/// // Submitted at the same instant: queues behind the first transfer.
/// let d2 = link.transfer(SimTime::ZERO, 512 * 1024);
/// assert_eq!(d2.as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct RdmaLink {
    bytes_per_sec: u64,
    base_latency: SimDuration,
    busy_until: SimTime,
    total_bytes: u64,
    total_ops: u64,
}

impl RdmaLink {
    /// Creates a link with the given service rate (bytes per second) and
    /// per-operation base latency in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64, base_latency_micros: u64) -> Self {
        assert!(bytes_per_sec > 0, "link rate must be positive");
        RdmaLink {
            bytes_per_sec,
            base_latency: SimDuration::from_micros(base_latency_micros),
            busy_until: SimTime::ZERO,
            total_bytes: 0,
            total_ops: 0,
        }
    }

    /// The configured service rate in bytes/second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Submits a transfer of `bytes` at instant `now`; returns the
    /// latency until the transfer completes (queueing + service + base).
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimDuration {
        let service_micros = (bytes as u128 * 1_000_000).div_ceil(self.bytes_per_sec as u128);
        let service = SimDuration::from_micros(service_micros as u64);
        let start = self.busy_until.max(now);
        let done = start + service;
        self.busy_until = done;
        self.total_bytes += bytes;
        self.total_ops += 1;
        done.saturating_since(now) + self.base_latency
    }

    /// Like [`RdmaLink::transfer`], but with the service rate scaled by
    /// `factor` for the duration of this transfer — the building block of
    /// brown-out modelling. A factor of `1.0` (or more) takes exactly the
    /// healthy-path integer arithmetic, so wrapping a link in degradation
    /// machinery with no active window cannot perturb results.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite or not strictly positive (a
    /// zero-rate link never completes; callers model full outages by
    /// deferring the submission instant instead).
    pub fn transfer_at_factor(&mut self, now: SimTime, bytes: u64, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor > 0.0,
            "link rate factor {factor} must be finite and positive"
        );
        if factor >= 1.0 {
            return self.transfer(now, bytes);
        }
        let service_micros = ((bytes as f64 * 1e6) / (self.bytes_per_sec as f64 * factor)).ceil();
        let service = SimDuration::from_micros(service_micros as u64);
        let start = self.busy_until.max(now);
        let done = start + service;
        self.busy_until = done;
        self.total_bytes += bytes;
        self.total_ops += 1;
        done.saturating_since(now) + self.base_latency
    }

    /// When the link becomes idle given no further traffic.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// `true` if a transfer submitted at `now` would start immediately.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Queueing delay a transfer submitted at `now` would see before its
    /// own service time begins.
    pub fn backlog_at(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// Lifetime bytes carried.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Lifetime transfer operations.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Average utilisation over `[SimTime::ZERO, now]`: fraction of wall
    /// time the link spent transferring. Zero for a zero-width window.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        let busy_secs = self.total_bytes as f64 / self.bytes_per_sec as f64;
        (busy_secs / now.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_gives_service_time_only() {
        let mut link = RdmaLink::new(1_000_000, 0); // 1 MB/s
        let d = link.transfer(SimTime::from_secs(10), 250_000);
        assert_eq!(d, SimDuration::from_millis(250));
    }

    #[test]
    fn base_latency_is_added() {
        let mut link = RdmaLink::new(1_000_000_000, 5);
        let d = link.transfer(SimTime::ZERO, 1_000); // 1 µs service
        assert_eq!(d, SimDuration::from_micros(6));
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut link = RdmaLink::new(1_000_000, 0);
        let t = SimTime::from_secs(1);
        let d1 = link.transfer(t, 1_000_000);
        let d2 = link.transfer(t, 1_000_000);
        assert_eq!(d1, SimDuration::from_secs(1));
        assert_eq!(d2, SimDuration::from_secs(2));
        assert_eq!(link.busy_until(), SimTime::from_secs(3));
    }

    #[test]
    fn queue_drains_over_time() {
        let mut link = RdmaLink::new(1_000_000, 0);
        link.transfer(SimTime::ZERO, 1_000_000); // busy until t=1s
        assert!(!link.is_idle_at(SimTime::from_millis(500)));
        assert_eq!(
            link.backlog_at(SimTime::from_millis(500)),
            SimDuration::from_millis(500)
        );
        // Submitted after the queue has drained: no queueing delay.
        let d = link.transfer(SimTime::from_secs(5), 1_000_000);
        assert_eq!(d, SimDuration::from_secs(1));
        assert!(link.is_idle_at(SimTime::from_secs(6)));
    }

    #[test]
    fn accounting_accumulates() {
        let mut link = RdmaLink::new(1_000, 0);
        link.transfer(SimTime::ZERO, 100);
        link.transfer(SimTime::ZERO, 200);
        assert_eq!(link.total_bytes(), 300);
        assert_eq!(link.total_ops(), 2);
    }

    #[test]
    fn utilization_bounds() {
        let mut link = RdmaLink::new(1_000_000, 0);
        assert_eq!(link.utilization(SimTime::ZERO), 0.0);
        link.transfer(SimTime::ZERO, 500_000);
        let u = link.utilization(SimTime::from_secs(1));
        assert!((u - 0.5).abs() < 1e-9);
        // Cannot exceed 1 even with over-submitted traffic.
        link.transfer(SimTime::ZERO, 10_000_000);
        assert_eq!(link.utilization(SimTime::from_secs(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = RdmaLink::new(0, 0);
    }

    #[test]
    fn factor_one_matches_plain_transfer() {
        let mut plain = RdmaLink::new(1_000_000, 3);
        let mut scaled = RdmaLink::new(1_000_000, 3);
        for bytes in [1, 999, 250_000, 1_000_000] {
            let a = plain.transfer(SimTime::from_secs(1), bytes);
            let b = scaled.transfer_at_factor(SimTime::from_secs(1), bytes, 1.0);
            assert_eq!(a, b);
        }
        assert_eq!(plain.busy_until(), scaled.busy_until());
    }

    #[test]
    fn fractional_factor_slows_service() {
        let mut link = RdmaLink::new(1_000_000, 0);
        // Half rate: 250 KB takes 500 ms instead of 250 ms.
        let d = link.transfer_at_factor(SimTime::ZERO, 250_000, 0.5);
        assert_eq!(d, SimDuration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn zero_factor_panics() {
        let mut link = RdmaLink::new(1_000_000, 0);
        let _ = link.transfer_at_factor(SimTime::ZERO, 1, 0.0);
    }

    #[test]
    fn tiny_transfer_rounds_up() {
        let mut link = RdmaLink::new(1_000_000_000, 0);
        // 1 byte over a 1 GB/s link still takes at least 1 µs (ceiling).
        let d = link.transfer(SimTime::ZERO, 1);
        assert_eq!(d, SimDuration::from_micros(1));
    }

    proptest::proptest! {
        // FIFO service: for submissions at non-decreasing instants, each
        // transfer completes no earlier than the one before it, and
        // `busy_until` never moves backwards.
        #[test]
        fn prop_fifo_completion_and_monotone_busy_until(
            submissions in proptest::collection::vec((0u64..10_000, 1u64..10_000_000), 1..50),
        ) {
            let mut link = RdmaLink::new(1_000_000, 0);
            let mut now = SimTime::ZERO;
            let mut prev_done = SimTime::ZERO;
            let mut prev_busy = SimTime::ZERO;
            for &(gap_micros, bytes) in &submissions {
                now += SimDuration::from_micros(gap_micros);
                let latency = link.transfer(now, bytes);
                let done = now + latency;
                proptest::prop_assert!(done >= prev_done, "completions out of FIFO order");
                proptest::prop_assert!(link.busy_until() >= prev_busy, "busy_until rewound");
                // The link is never idle before the transfer it just accepted.
                proptest::prop_assert!(link.busy_until() >= now);
                prev_done = done;
                prev_busy = link.busy_until();
            }
        }

        // Every transfer takes at least its own service time, regardless
        // of queueing.
        #[test]
        fn prop_latency_at_least_service_time(bytes in 1u64..100_000_000) {
            let rate = 1_000_000u64;
            let mut link = RdmaLink::new(rate, 0);
            let d = link.transfer(SimTime::ZERO, bytes);
            proptest::prop_assert!(d.as_secs_f64() >= bytes as f64 / rate as f64 - 1e-6);
        }
    }
}
