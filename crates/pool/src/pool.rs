//! The remote memory pool: capacity, link, traffic accounting.

use std::error::Error;
use std::fmt;

use faasmem_sim::faults::LinkSchedule;
use faasmem_sim::{SimDuration, SimTime};
use faasmem_trace::{EventKind, TraceLayer, Tracer};

use crate::degraded::DegradedLink;
use crate::link::RdmaLink;
use crate::retry::{CircuitBreaker, RecallOutcome, RemoteFaultPolicy};

/// Configuration of the remote memory pool and its interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolConfig {
    /// Remote node capacity in bytes.
    pub capacity_bytes: u64,
    /// Page-in (read) bandwidth in bytes/second.
    pub link_bytes_per_sec: u64,
    /// Page-out (write) bandwidth in bytes/second when it differs from
    /// the read direction — SSD backends are write-durability-limited
    /// (§9: Meta caps offload writes below 1 MB/s). `None` = symmetric.
    pub out_bytes_per_sec: Option<u64>,
    /// Base one-way latency added to every page-out batch, microseconds.
    pub page_out_base_micros: u64,
    /// Base round-trip latency of a demand page-in fault, microseconds.
    /// Fastswap reports single-digit-microsecond 4 KiB fetches over FDR
    /// InfiniBand; the fault path (trap + RDMA read + map) lands ~8 µs.
    pub page_in_base_micros: u64,
}

impl PoolConfig {
    /// The paper's testbed: 56 Gbps FDR InfiniBand (Mellanox CX3) and a
    /// 64 GB memory node (§8.1).
    pub fn infiniband_56g() -> Self {
        PoolConfig {
            capacity_bytes: 64 * 1024 * 1024 * 1024,
            // 56 Gbps signalling → ~6.8 GB/s effective payload.
            link_bytes_per_sec: 6_800_000_000,
            out_bytes_per_sec: None,
            page_out_base_micros: 3,
            page_in_base_micros: 8,
        }
    }

    /// A CXL-attached memory pool (§9): load/store latency in the
    /// hundreds of nanoseconds, tens of GB/s of bandwidth, no page-fault
    /// software path on reads worth speaking of. FaaSMem's mechanism is
    /// transport-agnostic; this preset lets experiments quantify how much
    /// of the recall penalty is interconnect-bound.
    pub fn cxl() -> Self {
        PoolConfig {
            capacity_bytes: 256 * 1024 * 1024 * 1024,
            link_bytes_per_sec: 30_000_000_000,
            out_bytes_per_sec: None,
            page_out_base_micros: 1,
            page_in_base_micros: 1,
        }
    }

    /// An NVMe-SSD backend (§9): fine read latency for cold data, but the
    /// paper rejects it because write durability caps sustained offload
    /// bandwidth near 1 MB/s — far below FaaSMem's offload demand.
    pub fn ssd() -> Self {
        PoolConfig {
            capacity_bytes: 1024 * 1024 * 1024 * 1024,
            link_bytes_per_sec: 2_000_000_000,
            out_bytes_per_sec: Some(1_000_000), // durability-limited writes
            page_out_base_micros: 20,
            page_in_base_micros: 80,
        }
    }

    /// A deliberately slow pool for tests that need visible penalties.
    pub fn slow_test_pool() -> Self {
        PoolConfig {
            capacity_bytes: 1024 * 1024 * 1024,
            link_bytes_per_sec: 100 * 1024 * 1024, // 100 MiB/s
            out_bytes_per_sec: None,
            page_out_base_micros: 10,
            page_in_base_micros: 50,
        }
    }

    /// Effective page-out bandwidth (bytes/second).
    pub fn effective_out_bytes_per_sec(&self) -> u64 {
        self.out_bytes_per_sec.unwrap_or(self.link_bytes_per_sec)
    }

    /// The smallest latency any transfer over this pool's links can
    /// exhibit: the lesser of the two base latencies, floored at one
    /// microsecond. The shard-parallel platform driver uses it as a
    /// conservative-window lookahead floor — no cross-shard pool edge
    /// can complete faster than this.
    pub fn min_transfer_latency(&self) -> SimDuration {
        SimDuration::from_micros(
            self.page_out_base_micros
                .min(self.page_in_base_micros)
                .max(1),
        )
    }

    /// Checks the configuration, returning one message per problem
    /// (empty = valid). [`RemotePool::new`] panics on a zero link rate;
    /// drivers call this first so a bad config fails with a message
    /// instead of a backtrace mid-grid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.capacity_bytes == 0 {
            problems.push("pool config: capacity must be positive".into());
        }
        if self.link_bytes_per_sec == 0 {
            problems.push("pool config: link bandwidth must be positive".into());
        }
        if self.out_bytes_per_sec == Some(0) {
            problems.push("pool config: page-out bandwidth override must be positive".into());
        }
        problems
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig::infiniband_56g()
    }
}

/// Errors returned by pool operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The page-out would exceed the remote node's capacity.
    Exhausted {
        /// Bytes requested by the failed page-out.
        requested: u64,
        /// Bytes still available on the remote node.
        available: u64,
    },
    /// A page-in asked for more bytes than the pool currently holds;
    /// indicates an accounting bug in the caller.
    Underflow {
        /// Bytes requested by the failed page-in.
        requested: u64,
        /// Bytes actually held by the pool.
        held: u64,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Exhausted {
                requested,
                available,
            } => write!(
                f,
                "remote pool exhausted: requested {requested} bytes, {available} available"
            ),
            PoolError::Underflow { requested, held } => write!(
                f,
                "remote pool underflow: requested {requested} bytes back, only {held} held"
            ),
        }
    }
}

impl Error for PoolError {}

/// A point-in-time traffic summary of the pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bytes currently held remotely.
    pub used_bytes: u64,
    /// Lifetime bytes paged out to the pool.
    pub bytes_out: u64,
    /// Lifetime bytes faulted back in.
    pub bytes_in: u64,
    /// Lifetime page-out operations (batches).
    pub out_ops: u64,
    /// Lifetime page-in operations (faults or prefetch batches).
    pub in_ops: u64,
}

/// Per-shard transfer totals recorded when shard accounting is enabled
/// (see [`RemotePool::enable_shard_accounting`]). Summed over all
/// shards these equal the pool-wide [`PoolStats`] traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTraffic {
    /// Bytes paged out on behalf of this shard.
    pub bytes_out: u64,
    /// Bytes faulted back in on behalf of this shard.
    pub bytes_in: u64,
    /// Page-out batches issued by this shard.
    pub out_ops: u64,
    /// Page-in batches issued by this shard.
    pub in_ops: u64,
}

/// The remote memory pool: a capacity-limited node behind an RDMA link.
///
/// # Examples
///
/// ```
/// use faasmem_pool::{PoolConfig, RemotePool};
/// use faasmem_sim::SimTime;
///
/// let mut pool = RemotePool::new(PoolConfig::slow_test_pool());
/// pool.page_out(SimTime::ZERO, 16, 4096).unwrap();
/// let fault = pool.page_in(SimTime::from_secs(1), 1, 4096).unwrap();
/// assert!(fault.as_micros() >= 50); // at least the base fault latency
/// ```
#[derive(Debug, Clone)]
pub struct RemotePool {
    config: PoolConfig,
    out_link: DegradedLink,
    in_link: DegradedLink,
    used_bytes: u64,
    bytes_out: u64,
    bytes_in: u64,
    out_ops: u64,
    in_ops: u64,
    /// Lifetime Σ(bytes × stall µs) over every transfer (page-outs,
    /// page-ins, redundancy copies) — the exact integral of in-flight
    /// interconnect bytes over time, read by occupancy accounting.
    transfer_byte_us: u128,
    offloads_suspended: bool,
    offloads_refused: u64,
    tracer: Tracer,
    /// Per-shard traffic ledger; empty (zero-cost) unless the sharded
    /// driver enabled accounting.
    shard_traffic: Vec<ShardTraffic>,
    /// The shard whose event handler is currently driving transfers —
    /// the link-ownership token the sharded driver rotates per event.
    active_shard: Option<u32>,
}

impl RemotePool {
    /// Creates a healthy pool from its configuration.
    pub fn new(config: PoolConfig) -> Self {
        RemotePool::with_link_schedule(config, LinkSchedule::empty())
    }

    /// Attaches a trace emission handle. Transfers, discards, refused
    /// offloads, recall retries and breaker-open transitions emit
    /// pool-layer events (attributed to the node, not a container).
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Creates a pool whose link (both directions) is subject to the
    /// given fault schedule. An empty schedule is exactly [`RemotePool::new`].
    pub fn with_link_schedule(config: PoolConfig, schedule: LinkSchedule) -> Self {
        let out_link = RdmaLink::new(
            config.effective_out_bytes_per_sec(),
            config.page_out_base_micros,
        );
        let in_link = RdmaLink::new(config.link_bytes_per_sec, config.page_in_base_micros);
        RemotePool {
            config,
            out_link: DegradedLink::new(out_link, schedule.clone()),
            in_link: DegradedLink::new(in_link, schedule),
            used_bytes: 0,
            bytes_out: 0,
            bytes_in: 0,
            out_ops: 0,
            in_ops: 0,
            transfer_byte_us: 0,
            offloads_suspended: false,
            offloads_refused: 0,
            tracer: Tracer::disabled(),
            shard_traffic: Vec::new(),
            active_shard: None,
        }
    }

    /// Enables per-shard transfer accounting with `shards` ledgers.
    /// Purely diagnostic: the ledgers never feed [`RemotePool::stats`],
    /// so enabling accounting cannot change any reported number. The
    /// sharded driver calls this after seeding (a fault plan rebuilds
    /// the pool during seeding, which would wipe earlier ledgers).
    pub fn enable_shard_accounting(&mut self, shards: u32) {
        self.shard_traffic = vec![ShardTraffic::default(); shards as usize];
        self.active_shard = None;
    }

    /// Declares the shard on whose behalf subsequent transfers run.
    /// No-op bookkeeping unless accounting is enabled.
    pub fn set_active_shard(&mut self, shard: u32) {
        self.active_shard = Some(shard);
    }

    /// The per-shard traffic ledgers; empty unless
    /// [`RemotePool::enable_shard_accounting`] was called.
    pub fn shard_traffic(&self) -> &[ShardTraffic] {
        &self.shard_traffic
    }

    /// Charges the active shard's ledger for one transfer. With
    /// accounting enabled every transfer must have a declared owner.
    fn charge_shard(&mut self, charge: impl FnOnce(&mut ShardTraffic)) {
        if self.shard_traffic.is_empty() {
            return;
        }
        debug_assert!(
            self.active_shard.is_some(),
            "shard accounting enabled but no active shard declared"
        );
        let shard = self.active_shard.unwrap_or(0) as usize % self.shard_traffic.len();
        charge(&mut self.shard_traffic[shard]);
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Bytes currently held remotely.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes of remote capacity still free.
    pub fn available_bytes(&self) -> u64 {
        self.config.capacity_bytes - self.used_bytes
    }

    /// Pages out a batch of `pages` pages of `page_size` bytes at `now`.
    /// Returns the time until the batch is durably remote.
    ///
    /// # Errors
    ///
    /// [`PoolError::Exhausted`] if the batch does not fit; no state
    /// changes in that case.
    pub fn page_out(
        &mut self,
        now: SimTime,
        pages: u64,
        page_size: u64,
    ) -> Result<SimDuration, PoolError> {
        let bytes = pages * page_size;
        if bytes > self.available_bytes() {
            return Err(PoolError::Exhausted {
                requested: bytes,
                available: self.available_bytes(),
            });
        }
        if bytes == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.used_bytes += bytes;
        self.bytes_out += bytes;
        self.out_ops += 1;
        self.charge_shard(|t| {
            t.bytes_out += bytes;
            t.out_ops += 1;
        });
        // Queueing delay must be read before the transfer advances the
        // link; computed only when the pool layer is actually traced.
        let traced = self.tracer.wants(TraceLayer::Pool);
        let queued_us = if traced {
            self.out_link.busy_until().saturating_since(now).as_micros()
        } else {
            0
        };
        let stall = self.out_link.transfer(now, bytes);
        self.transfer_byte_us += u128::from(bytes) * u128::from(stall.as_micros());
        if traced {
            self.tracer.emit(
                None,
                None,
                EventKind::PoolPageOut {
                    bytes,
                    stall_us: stall.as_micros(),
                    queued_us,
                },
            );
        }
        Ok(stall)
    }

    /// Faults `pages` pages back in at `now`. Returns the stall the
    /// faulting request experiences.
    ///
    /// # Errors
    ///
    /// [`PoolError::Underflow`] if the pool holds fewer bytes than
    /// requested; no state changes in that case.
    pub fn page_in(
        &mut self,
        now: SimTime,
        pages: u64,
        page_size: u64,
    ) -> Result<SimDuration, PoolError> {
        let bytes = pages * page_size;
        if bytes > self.used_bytes {
            return Err(PoolError::Underflow {
                requested: bytes,
                held: self.used_bytes,
            });
        }
        if bytes == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.used_bytes -= bytes;
        self.bytes_in += bytes;
        self.in_ops += 1;
        self.charge_shard(|t| {
            t.bytes_in += bytes;
            t.in_ops += 1;
        });
        let traced = self.tracer.wants(TraceLayer::Pool);
        let queued_us = if traced {
            self.in_link.busy_until().saturating_since(now).as_micros()
        } else {
            0
        };
        if traced {
            // Begin-marker of the recall: the completing `PoolPageIn`
            // below carries the measured stall, so span reconstruction
            // can pair the two into a page-in wait interval.
            self.tracer
                .emit(None, None, EventKind::RecallBegin { bytes });
        }
        // Demand faults are serial per page in the kernel's swap-in path,
        // but Fastswap batches reads; model the batch as one transfer plus
        // one base fault latency (already folded into the link).
        let stall = self.in_link.transfer(now, bytes);
        self.transfer_byte_us += u128::from(bytes) * u128::from(stall.as_micros());
        if traced {
            self.tracer.emit(
                None,
                None,
                EventKind::PoolPageIn {
                    bytes,
                    stall_us: stall.as_micros(),
                    queued_us,
                },
            );
        }
        Ok(stall)
    }

    /// Pushes `bytes` of redundancy traffic — replica or fragment copies
    /// created by a pool fabric at offload time — over the out link at
    /// `now`, returning the transfer duration. The traffic occupies real
    /// link bandwidth (so redundancy visibly contends with primary
    /// offloads) but deliberately bypasses the pool's capacity and
    /// [`PoolStats`] counters: redundancy overhead is accounted by the
    /// fabric's durability tracker, never in the primary traffic stats,
    /// which keeps single-pool runs byte-identical whether or not a
    /// degenerate fabric is attached.
    pub fn replicate_out(&mut self, now: SimTime, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let stall = self.out_link.transfer(now, bytes);
        self.transfer_byte_us += u128::from(bytes) * u128::from(stall.as_micros());
        stall
    }

    /// Faults `pages` pages back in under a fault policy: each attempt
    /// waits up to `policy.page_in_timeout` for the link to carry
    /// traffic, timed-out attempts back off exponentially, and after
    /// `policy.max_retries` retries the call gives up without touching
    /// pool state — the caller then discards the pages and cold-restarts
    /// locally. Successes and give-ups feed the circuit breaker.
    ///
    /// # Errors
    ///
    /// [`PoolError::Underflow`] if the pool holds fewer bytes than
    /// requested (a caller accounting bug, same as [`RemotePool::page_in`]).
    pub fn page_in_resilient(
        &mut self,
        now: SimTime,
        pages: u64,
        page_size: u64,
        policy: &RemoteFaultPolicy,
        breaker: &mut CircuitBreaker,
    ) -> Result<RecallOutcome, PoolError> {
        let mut waited = SimDuration::ZERO;
        for attempt in 0..=policy.max_retries {
            let t = now + waited;
            let ready = self.in_link.available_from(t);
            let defer = ready.saturating_since(t);
            if defer <= policy.page_in_timeout {
                let transfer = self.page_in(ready, pages, page_size)?;
                breaker.record_success();
                return Ok(RecallOutcome::Recovered {
                    stall: waited + defer + transfer,
                    retries: attempt,
                });
            }
            waited += policy.page_in_timeout + policy.backoff_delay(attempt);
            if self.tracer.wants(TraceLayer::Pool) {
                self.tracer.emit(
                    None,
                    None,
                    EventKind::RecallRetry {
                        attempt: u64::from(attempt) + 1,
                        waited_us: waited.as_micros(),
                    },
                );
            }
        }
        let newly_open = breaker.record_failure(now + waited);
        if self.tracer.wants(TraceLayer::Pool) {
            self.tracer.emit(
                None,
                None,
                EventKind::RecallGaveUp {
                    retries: u64::from(policy.max_retries) + 1,
                    wasted_us: waited.as_micros(),
                },
            );
            if newly_open {
                self.tracer.emit(None, None, EventKind::BreakerOpen);
            }
        }
        Ok(RecallOutcome::GaveUp {
            wasted: waited,
            retries: policy.max_retries + 1,
        })
    }

    /// Suspends or resumes offloading; set by the platform from the
    /// circuit breaker's state. While suspended, policies refuse new
    /// page-outs and count them via [`RemotePool::note_refused_offload`].
    pub fn set_offloads_suspended(&mut self, suspended: bool) {
        self.offloads_suspended = suspended;
    }

    /// `true` while the platform holds offloading suspended.
    pub fn offloads_suspended(&self) -> bool {
        self.offloads_suspended
    }

    /// Records one offload batch refused because offloading was
    /// suspended.
    pub fn note_refused_offload(&mut self) {
        self.offloads_refused += 1;
        if self.tracer.wants(TraceLayer::Pool) {
            self.tracer.emit(None, None, EventKind::OffloadRefused);
        }
    }

    /// Lifetime offload batches refused while suspended.
    pub fn offloads_refused(&self) -> u64 {
        self.offloads_refused
    }

    /// `true` when the node→pool direction would accept a submission at
    /// `now` (outside every scheduled outage window). An RDMA write into
    /// a downed fabric fails immediately, so policies check this before
    /// offloading rather than queueing behind the outage.
    pub fn out_link_up(&self, now: SimTime) -> bool {
        self.out_link.is_up(now)
    }

    /// `true` when the pool→node direction would accept a submission at
    /// `now`. Prefetchers check this before issuing optional page-ins;
    /// demand recalls go through [`RemotePool::page_in_resilient`]
    /// instead, which retries across the outage.
    pub fn in_link_up(&self, now: SimTime) -> bool {
        self.in_link.is_up(now)
    }

    /// Releases bytes held remotely without transferring them back
    /// (container recycled while pages were offloaded).
    ///
    /// # Errors
    ///
    /// [`PoolError::Underflow`] if the pool holds fewer bytes than
    /// requested.
    pub fn discard(&mut self, pages: u64, page_size: u64) -> Result<(), PoolError> {
        let bytes = pages * page_size;
        if bytes > self.used_bytes {
            return Err(PoolError::Underflow {
                requested: bytes,
                held: self.used_bytes,
            });
        }
        self.used_bytes -= bytes;
        if bytes > 0 && self.tracer.wants(TraceLayer::Pool) {
            self.tracer
                .emit(None, None, EventKind::PoolDiscard { bytes });
        }
        Ok(())
    }

    /// Aggregate link utilisation (both directions averaged) over
    /// `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        (self.out_link.utilization(now) + self.in_link.utilization(now)) / 2.0
    }

    /// Offload-direction link utilisation over `[0, now]`.
    pub fn out_utilization(&self, now: SimTime) -> f64 {
        self.out_link.utilization(now)
    }

    /// Recall-direction link utilisation over `[0, now]`.
    pub fn in_utilization(&self, now: SimTime) -> f64 {
        self.in_link.utilization(now)
    }

    /// Queueing delay an offload submitted at `now` would see.
    pub fn out_backlog(&self, now: SimTime) -> SimDuration {
        self.out_link.backlog_at(now)
    }

    /// Queueing delay a recall submitted at `now` would see.
    pub fn in_backlog(&self, now: SimTime) -> SimDuration {
        self.in_link.backlog_at(now)
    }

    /// How many of the two fabric directions are mid-transfer at
    /// `now` (0–2). Each link is a FIFO serving one queue, so this is
    /// the instantaneous in-flight transfer count.
    pub fn in_flight_transfers(&self, now: SimTime) -> u64 {
        u64::from(!self.out_link.is_idle_at(now)) + u64::from(!self.in_link.is_idle_at(now))
    }

    /// Average offload bandwidth in bytes/second over `[0, now]`.
    pub fn mean_out_bandwidth(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.bytes_out as f64 / now.as_secs_f64()
        }
    }

    /// Average page-in bandwidth in bytes/second over `[0, now]`.
    pub fn mean_in_bandwidth(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            self.bytes_in as f64 / now.as_secs_f64()
        }
    }

    /// Lifetime Σ(bytes × stall µs) over every transfer in either
    /// direction, redundancy copies included — the exact integer
    /// integral of in-flight interconnect bytes over time. Monotone;
    /// occupancy accounting differences it between events to charge the
    /// `offload_inflight` waste component.
    pub fn transfer_byte_micros(&self) -> u128 {
        self.transfer_byte_us
    }

    /// A traffic snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            used_bytes: self.used_bytes,
            bytes_out: self.bytes_out,
            bytes_in: self.bytes_in,
            out_ops: self.out_ops,
            in_ops: self.in_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> RemotePool {
        RemotePool::new(PoolConfig::slow_test_pool())
    }

    #[test]
    fn page_out_accounts_bytes() {
        let mut p = pool();
        p.page_out(SimTime::ZERO, 10, 4096).unwrap();
        assert_eq!(p.used_bytes(), 40_960);
        assert_eq!(p.stats().bytes_out, 40_960);
        assert_eq!(p.stats().out_ops, 1);
    }

    #[test]
    fn page_in_returns_bytes() {
        let mut p = pool();
        p.page_out(SimTime::ZERO, 10, 4096).unwrap();
        p.page_in(SimTime::from_secs(1), 4, 4096).unwrap();
        assert_eq!(p.used_bytes(), 6 * 4096);
        assert_eq!(p.stats().bytes_in, 4 * 4096);
    }

    #[test]
    fn telemetry_accessors_track_per_direction_link_state() {
        let mut p = pool();
        assert_eq!(p.in_flight_transfers(SimTime::ZERO), 0);
        assert_eq!(p.out_backlog(SimTime::ZERO), SimDuration::ZERO);

        p.page_out(SimTime::ZERO, 10, 4096).unwrap();
        // The slow test pool serves 40 KiB well after t=0: the out
        // direction is busy, the in direction idle.
        assert_eq!(p.in_flight_transfers(SimTime::ZERO), 1);
        assert!(p.out_backlog(SimTime::ZERO) > SimDuration::ZERO);
        assert_eq!(p.in_backlog(SimTime::ZERO), SimDuration::ZERO);
        assert!(p.out_utilization(SimTime::from_micros(1)) > 0.0);
        assert_eq!(p.in_utilization(SimTime::from_micros(1)), 0.0);

        // Long after the transfer drains, nothing is in flight and
        // utilisation decays toward zero.
        let later = SimTime::from_secs(3_600);
        assert_eq!(p.in_flight_transfers(later), 0);
        assert_eq!(p.out_backlog(later), SimDuration::ZERO);
        assert!(p.out_utilization(later) < 0.01);
    }

    #[test]
    fn transfer_byte_micros_integrates_bytes_over_stalls() {
        let mut p = pool();
        assert_eq!(p.transfer_byte_micros(), 0);
        let out = p.page_out(SimTime::ZERO, 10, 4096).unwrap();
        let mut expected = 40_960u128 * u128::from(out.as_micros());
        assert_eq!(p.transfer_byte_micros(), expected);
        let back = p.page_in(SimTime::from_secs(1), 4, 4096).unwrap();
        expected += 4 * 4096 * u128::from(back.as_micros());
        assert_eq!(p.transfer_byte_micros(), expected);
        let rep = p.replicate_out(SimTime::from_secs(2), 8192);
        expected += 8192 * u128::from(rep.as_micros());
        assert_eq!(p.transfer_byte_micros(), expected);
        // Discards move no bytes over the wire.
        p.discard(6, 4096).unwrap();
        assert_eq!(p.transfer_byte_micros(), expected);
    }

    #[test]
    fn zero_page_ops_are_free() {
        let mut p = pool();
        assert_eq!(
            p.page_out(SimTime::ZERO, 0, 4096).unwrap(),
            SimDuration::ZERO
        );
        assert_eq!(
            p.page_in(SimTime::ZERO, 0, 4096).unwrap(),
            SimDuration::ZERO
        );
        assert_eq!(p.stats(), PoolStats::default());
    }

    #[test]
    fn exhaustion_is_detected_and_harmless() {
        let mut p = RemotePool::new(PoolConfig {
            capacity_bytes: 8192,
            ..PoolConfig::slow_test_pool()
        });
        p.page_out(SimTime::ZERO, 1, 4096).unwrap();
        let err = p.page_out(SimTime::ZERO, 2, 4096).unwrap_err();
        assert_eq!(
            err,
            PoolError::Exhausted {
                requested: 8192,
                available: 4096
            }
        );
        assert_eq!(p.used_bytes(), 4096, "failed op must not change state");
    }

    #[test]
    fn underflow_is_detected() {
        let mut p = pool();
        let err = p.page_in(SimTime::ZERO, 1, 4096).unwrap_err();
        assert_eq!(
            err,
            PoolError::Underflow {
                requested: 4096,
                held: 0
            }
        );
    }

    #[test]
    fn discard_releases_without_traffic() {
        let mut p = pool();
        p.page_out(SimTime::ZERO, 10, 4096).unwrap();
        let in_before = p.stats().bytes_in;
        p.discard(10, 4096).unwrap();
        assert_eq!(p.used_bytes(), 0);
        assert_eq!(p.stats().bytes_in, in_before);
        assert!(p.discard(1, 4096).is_err());
    }

    #[test]
    fn fault_latency_includes_base() {
        let mut p = pool();
        p.page_out(SimTime::ZERO, 1, 4096).unwrap();
        let d = p.page_in(SimTime::from_secs(10), 1, 4096).unwrap();
        assert!(d >= SimDuration::from_micros(50));
    }

    #[test]
    fn saturation_queues_transfers() {
        let mut p = pool();
        // 100 MiB/s link; 200 MiB out at the same instant: second batch
        // sees ~1s of queueing.
        let d1 = p.page_out(SimTime::ZERO, 25_600, 4096).unwrap();
        let d2 = p.page_out(SimTime::ZERO, 25_600, 4096).unwrap();
        assert!(d2 > d1);
        assert!(d2.as_secs_f64() > 1.5);
    }

    #[test]
    fn bandwidth_means() {
        let mut p = pool();
        p.page_out(SimTime::ZERO, 25_600, 4096).unwrap(); // 100 MiB
        let bw = p.mean_out_bandwidth(SimTime::from_secs(10));
        assert!((bw - 10.0 * 1024.0 * 1024.0).abs() < 1.0);
        assert_eq!(p.mean_out_bandwidth(SimTime::ZERO), 0.0);
        assert_eq!(p.mean_in_bandwidth(SimTime::from_secs(1)), 0.0);
    }

    #[test]
    fn presets_match_section_9() {
        let cxl = PoolConfig::cxl();
        let ib = PoolConfig::infiniband_56g();
        let ssd = PoolConfig::ssd();
        assert!(cxl.page_in_base_micros < ib.page_in_base_micros);
        assert!(cxl.link_bytes_per_sec > ib.link_bytes_per_sec);
        assert_eq!(ssd.effective_out_bytes_per_sec(), 1_000_000);
        assert_eq!(ib.effective_out_bytes_per_sec(), ib.link_bytes_per_sec);
    }

    #[test]
    fn ssd_writes_are_durability_limited() {
        let mut p = RemotePool::new(PoolConfig::ssd());
        // 10 MiB out over a 1 MB/s write path: ~10 s.
        let d = p.page_out(SimTime::ZERO, 2_560, 4_096).unwrap();
        assert!(d.as_secs_f64() > 8.0, "got {d}");
        // Reads stay fast.
        let d = p.page_in(SimTime::from_secs(100), 1, 4_096).unwrap();
        assert!(d.as_secs_f64() < 0.001, "got {d}");
    }

    #[test]
    fn validate_flags_nonsense() {
        assert!(PoolConfig::infiniband_56g().validate().is_empty());
        let bad = PoolConfig {
            capacity_bytes: 0,
            link_bytes_per_sec: 0,
            out_bytes_per_sec: Some(0),
            ..PoolConfig::slow_test_pool()
        };
        assert_eq!(bad.validate().len(), 3);
    }

    fn outage_pool(outage_secs: u64) -> RemotePool {
        use faasmem_sim::faults::LinkWindow;
        let schedule = LinkSchedule::from_windows(vec![LinkWindow {
            start: SimTime::ZERO,
            end: SimTime::from_secs(outage_secs),
            factor: 0.0,
        }]);
        RemotePool::with_link_schedule(PoolConfig::slow_test_pool(), schedule)
    }

    #[test]
    fn resilient_page_in_rides_out_short_outage() {
        use crate::retry::{CircuitBreaker, RecallOutcome, RemoteFaultPolicy};
        let mut p = outage_pool(10);
        p.page_out(SimTime::ZERO, 4, 4096).unwrap();
        let policy = RemoteFaultPolicy::default();
        let mut breaker = CircuitBreaker::from_policy(&policy);
        let out = p
            .page_in_resilient(SimTime::ZERO, 4, 4096, &policy, &mut breaker)
            .unwrap();
        match out {
            RecallOutcome::Recovered { stall, retries } => {
                // Attempts at t=0/3/7 time out; t=13 is past the outage.
                assert_eq!(retries, 3);
                assert!(stall >= SimDuration::from_secs(13), "got {stall}");
            }
            RecallOutcome::GaveUp { .. } => panic!("should recover"),
        }
        assert_eq!(p.stats().bytes_in, 4 * 4096, "recovery transfers pages");
        assert!(!breaker.is_open(SimTime::from_secs(20)));
    }

    #[test]
    fn resilient_page_in_gives_up_on_long_outage() {
        use crate::retry::{CircuitBreaker, RecallOutcome, RemoteFaultPolicy};
        let mut p = outage_pool(3_600);
        p.page_out(SimTime::ZERO, 4, 4096).unwrap();
        let policy = RemoteFaultPolicy::hasty();
        let mut breaker = CircuitBreaker::from_policy(&policy);
        let held = p.used_bytes();
        for _ in 0..2 {
            let out = p
                .page_in_resilient(SimTime::ZERO, 4, 4096, &policy, &mut breaker)
                .unwrap();
            assert!(matches!(out, RecallOutcome::GaveUp { retries: 3, .. }));
        }
        assert_eq!(p.used_bytes(), held, "give-up leaves pool state alone");
        assert!(
            breaker.is_open(SimTime::from_secs(5)),
            "two give-ups trip the hasty breaker"
        );
        assert_eq!(breaker.opens(), 1);
    }

    #[test]
    fn offload_suspension_is_tracked() {
        let mut p = pool();
        assert!(!p.offloads_suspended());
        p.set_offloads_suspended(true);
        assert!(p.offloads_suspended());
        p.note_refused_offload();
        p.note_refused_offload();
        assert_eq!(p.offloads_refused(), 2);
        p.set_offloads_suspended(false);
        assert!(!p.offloads_suspended());
    }

    #[test]
    fn attached_tracer_reports_pool_events() {
        use faasmem_trace::{EventKind, LayerMask, Tracer};

        let tracer = Tracer::recording(LayerMask::ALL);
        let mut p = pool();
        p.attach_tracer(tracer.clone());
        p.page_out(SimTime::ZERO, 25_600, 4096).unwrap();
        p.page_out(SimTime::ZERO, 25_600, 4096).unwrap(); // queues behind the first
        p.page_in(SimTime::from_secs(10), 4, 4096).unwrap();
        p.discard(4, 4096).unwrap();
        p.note_refused_offload();

        let events = tracer.take_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec![
                "pool_page_out",
                "pool_page_out",
                "recall_begin",
                "pool_page_in",
                "pool_discard",
                "offload_refused",
            ]
        );
        // The begin-marker announces the same bytes the completing
        // page-in reports.
        match (&events[2].kind, &events[3].kind) {
            (EventKind::RecallBegin { bytes: b0 }, EventKind::PoolPageIn { bytes: b1, .. }) => {
                assert_eq!(b0, b1);
            }
            other => panic!("unexpected kinds {other:?}"),
        }
        // The second page-out saw the first still on the wire.
        match (&events[0].kind, &events[1].kind) {
            (
                EventKind::PoolPageOut { queued_us: q1, .. },
                EventKind::PoolPageOut { queued_us: q2, .. },
            ) => {
                assert_eq!(*q1, 0);
                assert!(*q2 >= 1_000_000, "second batch queued ~1s, got {q2}µs");
            }
            other => panic!("unexpected kinds {other:?}"),
        }
    }

    #[test]
    fn resilient_give_up_traces_retries_and_breaker() {
        use crate::retry::{CircuitBreaker, RemoteFaultPolicy};
        use faasmem_trace::{EventKind, LayerMask, Tracer};

        let tracer = Tracer::recording(LayerMask::ALL);
        let mut p = outage_pool(3_600);
        p.attach_tracer(tracer.clone());
        p.page_out(SimTime::ZERO, 4, 4096).unwrap();
        let policy = RemoteFaultPolicy::hasty();
        let mut breaker = CircuitBreaker::from_policy(&policy);
        for _ in 0..2 {
            p.page_in_resilient(SimTime::ZERO, 4, 4096, &policy, &mut breaker)
                .unwrap();
        }
        let events = tracer.take_events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        // page_out, then per give-up: 3 retries + gave_up; the second
        // give-up trips the hasty breaker (threshold 2).
        assert_eq!(
            kinds,
            vec![
                "pool_page_out",
                "recall_retry",
                "recall_retry",
                "recall_retry",
                "recall_gave_up",
                "recall_retry",
                "recall_retry",
                "recall_retry",
                "recall_gave_up",
                "breaker_open",
            ]
        );
        assert!(matches!(
            events[4].kind,
            EventKind::RecallGaveUp { retries: 3, .. }
        ));
    }

    #[test]
    fn shard_ledgers_partition_the_pool_totals() {
        let mut p = pool();
        p.enable_shard_accounting(3);
        p.set_active_shard(0);
        p.page_out(SimTime::ZERO, 10, 4096).unwrap();
        p.set_active_shard(2);
        p.page_out(SimTime::ZERO, 6, 4096).unwrap();
        p.page_in(SimTime::from_secs(1), 4, 4096).unwrap();
        p.set_active_shard(1);
        p.page_in(SimTime::from_secs(2), 2, 4096).unwrap();
        // Discards release capacity without traffic: no ledger charge.
        p.discard(1, 4096).unwrap();

        let ledgers = p.shard_traffic();
        assert_eq!(ledgers.len(), 3);
        assert_eq!(ledgers[0].bytes_out, 10 * 4096);
        assert_eq!(ledgers[2].bytes_out, 6 * 4096);
        assert_eq!(ledgers[2].bytes_in, 4 * 4096);
        assert_eq!(ledgers[1].bytes_in, 2 * 4096);
        let stats = p.stats();
        assert_eq!(
            ledgers.iter().map(|t| t.bytes_out).sum::<u64>(),
            stats.bytes_out
        );
        assert_eq!(
            ledgers.iter().map(|t| t.bytes_in).sum::<u64>(),
            stats.bytes_in
        );
        assert_eq!(
            ledgers.iter().map(|t| t.out_ops).sum::<u64>(),
            stats.out_ops
        );
        assert_eq!(ledgers.iter().map(|t| t.in_ops).sum::<u64>(), stats.in_ops);
    }

    #[test]
    fn shard_accounting_never_touches_reported_stats() {
        let mut plain = pool();
        plain.page_out(SimTime::ZERO, 10, 4096).unwrap();
        plain.page_in(SimTime::from_secs(1), 4, 4096).unwrap();

        let mut sharded = pool();
        sharded.enable_shard_accounting(4);
        sharded.set_active_shard(3);
        sharded.page_out(SimTime::ZERO, 10, 4096).unwrap();
        sharded.page_in(SimTime::from_secs(1), 4, 4096).unwrap();

        assert_eq!(plain.stats(), sharded.stats());
        assert!(plain.shard_traffic().is_empty());
    }

    #[test]
    fn min_transfer_latency_floors_at_a_microsecond() {
        assert_eq!(
            PoolConfig::slow_test_pool().min_transfer_latency(),
            SimDuration::from_micros(10)
        );
        let zero = PoolConfig {
            page_out_base_micros: 0,
            page_in_base_micros: 0,
            ..PoolConfig::slow_test_pool()
        };
        assert_eq!(zero.min_transfer_latency(), SimDuration::from_micros(1));
    }

    #[test]
    fn error_display_mentions_numbers() {
        let e = PoolError::Exhausted {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        let e = PoolError::Underflow {
            requested: 3,
            held: 1,
        };
        assert!(e.to_string().contains("3"));
    }
}
