//! Client-side fault handling for remote page-ins: timeout, bounded
//! exponential backoff, and a circuit breaker.
//!
//! When the pool link misbehaves, the platform cannot simply block a
//! request until the link returns — cold-starting the function locally
//! bounds the damage. [`RemoteFaultPolicy`] captures how patient the
//! platform is: how long one page-in may wait, how retries back off, and
//! after how many consecutive give-ups the [`CircuitBreaker`] declares
//! the pool unhealthy so offloading is suspended until a cooldown
//! passes.

use faasmem_sim::{SimDuration, SimTime};

/// How the platform handles remote page-ins under link faults.
///
/// # Examples
///
/// ```
/// use faasmem_pool::RemoteFaultPolicy;
/// use faasmem_sim::SimDuration;
///
/// let policy = RemoteFaultPolicy::default();
/// // Backoff doubles per attempt and saturates at the cap.
/// assert_eq!(policy.backoff_delay(0), policy.backoff_base);
/// assert!(policy.backoff_delay(30) <= policy.backoff_cap);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteFaultPolicy {
    /// Longest a single page-in attempt may wait for the link to carry
    /// traffic before it counts as timed out.
    pub page_in_timeout: SimDuration,
    /// Delay before the first retry; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: SimDuration,
    /// Retries after the first attempt before giving up entirely.
    pub max_retries: u32,
    /// Consecutive give-ups that trip the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open once tripped.
    pub breaker_cooldown: SimDuration,
}

impl Default for RemoteFaultPolicy {
    /// A patient policy: tolerate short outages, give up only on long
    /// ones (2 s timeout, 1 s base backoff capped at 60 s, 8 retries,
    /// breaker trips after 3 consecutive give-ups for 30 s).
    fn default() -> Self {
        RemoteFaultPolicy {
            page_in_timeout: SimDuration::from_secs(2),
            backoff_base: SimDuration::from_secs(1),
            backoff_cap: SimDuration::from_secs(60),
            max_retries: 8,
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(30),
        }
    }
}

impl RemoteFaultPolicy {
    /// A hasty policy that bails to local cold restarts almost
    /// immediately — the other end of the availability/latency trade-off.
    pub fn hasty() -> Self {
        RemoteFaultPolicy {
            page_in_timeout: SimDuration::from_millis(200),
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(1),
            max_retries: 2,
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::from_secs(10),
        }
    }

    /// The delay inserted after timed-out attempt number `attempt`
    /// (0-based): `min(backoff_base · 2^attempt, backoff_cap)`, with
    /// saturation instead of overflow for large attempt counts.
    pub fn backoff_delay(&self, attempt: u32) -> SimDuration {
        let scaled = 1u64
            .checked_shl(attempt)
            .map(|m| self.backoff_base.as_micros().saturating_mul(m))
            .unwrap_or(u64::MAX);
        SimDuration::from_micros(scaled).min(self.backoff_cap)
    }

    /// Checks the policy's numeric ranges, returning one message per
    /// problem (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.page_in_timeout.is_zero() {
            problems.push("fault policy: page-in timeout must be positive".into());
        }
        if self.backoff_cap < self.backoff_base {
            problems.push(format!(
                "fault policy: backoff cap {} below base {}",
                self.backoff_cap, self.backoff_base
            ));
        }
        if self.breaker_threshold == 0 {
            problems.push("fault policy: breaker threshold must be at least 1".into());
        }
        problems
    }
}

/// A consecutive-failure circuit breaker over the remote pool.
///
/// Each give-up recorded via [`record_failure`] counts toward the
/// threshold; reaching it opens the breaker for the cooldown period.
/// Any success resets the count. The platform polls [`is_open`] to
/// decide whether offloading is currently suspended.
///
/// [`record_failure`]: CircuitBreaker::record_failure
/// [`is_open`]: CircuitBreaker::is_open
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimDuration,
    consecutive_failures: u32,
    open_until: Option<SimTime>,
    opens: u64,
}

impl CircuitBreaker {
    /// A closed breaker that opens for `cooldown` after `threshold`
    /// consecutive failures.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32, cooldown: SimDuration) -> Self {
        assert!(threshold > 0, "breaker threshold must be positive");
        CircuitBreaker {
            threshold,
            cooldown,
            consecutive_failures: 0,
            open_until: None,
            opens: 0,
        }
    }

    /// A breaker configured from a fault policy.
    pub fn from_policy(policy: &RemoteFaultPolicy) -> Self {
        CircuitBreaker::new(policy.breaker_threshold.max(1), policy.breaker_cooldown)
    }

    /// `true` while the breaker holds the pool unhealthy at `now`.
    pub fn is_open(&self, now: SimTime) -> bool {
        self.open_until.is_some_and(|until| now < until)
    }

    /// Records a give-up at `now`; trips the breaker when the threshold
    /// is reached. Returns `true` exactly when this call newly tripped
    /// it, so callers can trace the open transition without polling.
    pub fn record_failure(&mut self, now: SimTime) -> bool {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.threshold {
            self.open_until = Some(now + self.cooldown);
            self.opens += 1;
            self.consecutive_failures = 0;
            return true;
        }
        false
    }

    /// Records a successful remote operation, resetting the failure
    /// streak. An already-open breaker stays open until its cooldown
    /// expires.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
    }

    /// How many times the breaker has tripped over its lifetime.
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

/// The outcome of a resilient page-in
/// ([`RemotePool::page_in_resilient`]).
///
/// [`RemotePool::page_in_resilient`]: crate::RemotePool::page_in_resilient
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecallOutcome {
    /// The pages came back; the request stalls for `stall` total
    /// (timeouts + backoff + deferral + transfer).
    Recovered {
        /// Total stall the faulting request observes.
        stall: SimDuration,
        /// Timed-out attempts before the one that succeeded.
        retries: u32,
    },
    /// Every attempt timed out; the pages stay remote and the caller
    /// must fall back (discard + local cold restart).
    GaveUp {
        /// Time burned on timeouts and backoff before giving up.
        wasted: SimDuration,
        /// Attempts made (always `max_retries + 1`).
        retries: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RemoteFaultPolicy {
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_millis(450),
            ..RemoteFaultPolicy::default()
        };
        assert_eq!(p.backoff_delay(0), SimDuration::from_millis(100));
        assert_eq!(p.backoff_delay(1), SimDuration::from_millis(200));
        assert_eq!(p.backoff_delay(2), SimDuration::from_millis(400));
        assert_eq!(p.backoff_delay(3), SimDuration::from_millis(450));
        assert_eq!(p.backoff_delay(63), SimDuration::from_millis(450));
        assert_eq!(p.backoff_delay(200), SimDuration::from_millis(450));
    }

    #[test]
    fn breaker_trips_after_threshold_and_cools_down() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(30));
        let t = SimTime::from_secs(100);
        assert!(!b.is_open(t));
        assert!(!b.record_failure(t));
        assert!(!b.record_failure(t));
        assert!(!b.is_open(t), "below threshold");
        assert!(b.record_failure(t), "third failure newly trips");
        assert!(b.is_open(t));
        assert!(b.is_open(SimTime::from_secs(129)));
        assert!(!b.is_open(SimTime::from_secs(130)), "cooldown expired");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(2, SimDuration::from_secs(10));
        b.record_failure(SimTime::ZERO);
        b.record_success();
        b.record_failure(SimTime::from_secs(1));
        assert!(!b.is_open(SimTime::from_secs(1)), "streak was reset");
        b.record_failure(SimTime::from_secs(2));
        assert!(b.is_open(SimTime::from_secs(2)));
    }

    #[test]
    fn validate_flags_nonsense() {
        let mut p = RemoteFaultPolicy::default();
        assert!(p.validate().is_empty());
        assert!(RemoteFaultPolicy::hasty().validate().is_empty());
        p.page_in_timeout = SimDuration::ZERO;
        p.backoff_cap = SimDuration::ZERO;
        p.breaker_threshold = 0;
        assert_eq!(p.validate().len(), 3);
    }

    proptest::proptest! {
        // Satellite property: backoff delays are monotone non-decreasing
        // in the attempt number and never exceed the cap.
        #[test]
        fn prop_backoff_monotone_and_capped(
            base_micros in 1u64..10_000_000,
            cap_micros in 1u64..600_000_000,
            attempts in 1u32..80,
        ) {
            let p = RemoteFaultPolicy {
                backoff_base: SimDuration::from_micros(base_micros),
                backoff_cap: SimDuration::from_micros(cap_micros),
                ..RemoteFaultPolicy::default()
            };
            let mut prev = SimDuration::ZERO;
            for attempt in 0..attempts {
                let d = p.backoff_delay(attempt);
                proptest::prop_assert!(d >= prev, "backoff decreased at attempt {}", attempt);
                proptest::prop_assert!(d <= p.backoff_cap, "backoff exceeded cap");
                prev = d;
            }
        }
    }
}
