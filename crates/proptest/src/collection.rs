//! Collection strategies: `vec(element, size_range)`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length
/// is uniform in `size` (half-open, like upstream's `SizeRange`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_cover_the_range() {
        let mut rng = TestRng::from_seed(5);
        let s = vec(0u64..10, 0..4);
        let mut seen = [false; 4];
        for _ in 0..400 {
            seen[s.generate(&mut rng).len()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = TestRng::from_seed(6);
        let s = vec((0u64..1_000_000, 0u32..50), 0..200);
        let v = s.generate(&mut rng);
        assert!(v.len() < 200);
        assert!(v.iter().all(|&(a, b)| a < 1_000_000 && b < 50));
    }
}
