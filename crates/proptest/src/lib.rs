//! A dependency-free, deterministic re-implementation of the subset of
//! the `proptest` API this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be fetched; this crate vendors the pieces the test
//! suites rely on — range and tuple strategies, [`collection::vec`],
//! [`strategy::Just`], `prop_map`, the [`proptest!`] macro and the
//! `prop_assert*` assertions — behind the same paths and names.
//!
//! Differences from upstream, by design:
//!
//! * Cases are generated from a deterministic per-test seed (FNV hash of
//!   the test's module path and name), so failures reproduce exactly on
//!   every platform and run.
//! * There is no shrinking: a failing case panics with the ordinary
//!   assertion message. With deterministic seeds a failure is already
//!   reproducible, which is what shrinking mostly buys.
//! * The default number of cases is 64 (upstream: 256) to keep
//!   simulation-heavy properties fast in CI.
//!
//! ```text
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

/// Per-`proptest!` block configuration.
///
/// Only the `cases` knob is implemented; it is the only one the
/// workspace uses.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property-test module normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property, reporting the failing
/// expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `#[test] fn name(pattern in strategy,
/// ...) { body }` item expands to an ordinary `#[test]` that runs the
/// body over `cases` deterministic random inputs.
///
/// An optional leading `#![proptest_config(expr)]` overrides the
/// default [`ProptestConfig`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr) $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __seed_base = $crate::test_runner::fnv1a(
                    concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                );
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __seed_base ^ u64::from(__case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = TestRng::from_seed(7);
        let strat = 10u64..20;
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn signed_range_strategy_respects_bounds() {
        let mut rng = TestRng::from_seed(8);
        let strat = -5i64..5;
        let mut seen_negative = false;
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((-5..5).contains(&v));
            seen_negative |= v < 0;
        }
        assert!(seen_negative);
    }

    #[test]
    fn f64_range_strategy_respects_bounds() {
        let mut rng = TestRng::from_seed(9);
        let strat = -50.0f64..150.0;
        for _ in 0..1_000 {
            let v = strat.generate(&mut rng);
            assert!((-50.0..150.0).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::from_seed(10);
        let strat = collection::vec(0u8..4, 1..120);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..120).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn tuple_and_map_strategies_compose() {
        let mut rng = TestRng::from_seed(11);
        let strat = (0u64..100, Just("fixed")).prop_map(|(n, s)| format!("{s}:{n}"));
        let v = strat.generate(&mut rng);
        assert!(v.starts_with("fixed:"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_with_custom_config(xs in collection::vec(0u64..50, 0..10)) {
            prop_assert!(xs.len() < 10);
        }

        #[test]
        fn macro_supports_mut_patterns(mut xs in collection::vec(0u32..9, 1..6)) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #[test]
        fn macro_default_config_runs(a in 0usize..3, b in 0usize..3) {
            prop_assert!(a + b < 6, "a={a} b={b}");
        }
    }
}
