//! Value-generation strategies: ranges, tuples, constants and `prop_map`.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree or shrinking;
/// `generate` draws one concrete value from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range {:?}", self);
                    let span = u64::from(self.end as u64 - self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
        )*
    };
}

unsigned_range_strategy!(u8, u16, u32, u64);

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range {:?}", self);
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span) as usize
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range {:?}", self);
                    let span = (i128::from(self.end) - i128::from(self.start)) as u64;
                    (i128::from(self.start) + i128::from(rng.below(span))) as $t
                }
            }
        )*
    };
}

signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range {:?}", self);
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating arithmetic may land exactly on `end`; half-open means
        // it must not escape.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn just_clones_its_value() {
        let mut rng = TestRng::from_seed(1);
        let s = Just(vec![1, 2, 3]);
        assert_eq!(s.generate(&mut rng), vec![1, 2, 3]);
        assert_eq!(s.generate(&mut rng), vec![1, 2, 3]);
    }

    #[test]
    fn u8_range_hits_every_value() {
        let mut rng = TestRng::from_seed(2);
        let s = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn tuple_of_three_generates_each() {
        let mut rng = TestRng::from_seed(3);
        let s = (0u64..10, 0u32..10, Just(1.5f64));
        let (a, b, c) = s.generate(&mut rng);
        assert!(a < 10 && b < 10);
        assert_eq!(c, 1.5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = TestRng::from_seed(4);
        let _ = (5u64..5).generate(&mut rng);
    }
}
