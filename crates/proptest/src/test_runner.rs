//! The deterministic random source behind every generated case.

/// FNV-1a hash of a string; used to derive a stable per-test seed from
/// the test's fully qualified name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A small, fast, deterministic generator (SplitMix64). Quality is more
/// than sufficient for test-case generation, and the single-word state
/// makes every case trivially reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via 128-bit multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_differs_per_name() {
        assert_ne!(fnv1a("a::b"), fnv1a("a::c"));
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut rng = TestRng::from_seed(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
