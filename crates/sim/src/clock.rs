//! A monotone simulated clock.

use crate::time::{SimDuration, SimTime};

/// A monotonically advancing simulated clock.
///
/// The clock refuses to move backwards: drivers advance it to each event's
/// firing time, and an attempt to rewind is a logic error that would break
/// causality, so it panics loudly instead of corrupting the run.
///
/// # Examples
///
/// ```
/// use faasmem_sim::{Clock, SimTime, SimDuration};
///
/// let mut clock = Clock::new();
/// clock.advance_to(SimTime::from_secs(3));
/// clock.advance_by(SimDuration::from_secs(2));
/// assert_eq!(clock.now(), SimTime::from_secs(5));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at `SimTime::ZERO`.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Creates a clock already advanced to `start`.
    pub fn starting_at(start: SimTime) -> Self {
        Clock { now: start }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is earlier than the current time.
    pub fn advance_to(&mut self, to: SimTime) {
        assert!(
            to >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            to
        );
        self.now = to;
    }

    /// Advances the clock by `d`.
    pub fn advance_by(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Time elapsed since `earlier` (zero if `earlier` is in the future).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        self.now.saturating_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn starting_at_offsets() {
        let c = Clock::starting_at(SimTime::from_secs(42));
        assert_eq!(c.now(), SimTime::from_secs(42));
    }

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance_by(SimDuration::from_millis(1));
        c.advance_by(SimDuration::from_millis(2));
        assert_eq!(c.now(), SimTime::from_millis(3));
    }

    #[test]
    fn advance_to_same_instant_is_ok() {
        let mut c = Clock::starting_at(SimTime::from_secs(1));
        c.advance_to(SimTime::from_secs(1));
        assert_eq!(c.now(), SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn rewind_panics() {
        let mut c = Clock::starting_at(SimTime::from_secs(10));
        c.advance_to(SimTime::from_secs(9));
    }

    #[test]
    fn since_saturates() {
        let c = Clock::starting_at(SimTime::from_secs(5));
        assert_eq!(c.since(SimTime::from_secs(2)), SimDuration::from_secs(3));
        assert_eq!(c.since(SimTime::from_secs(9)), SimDuration::ZERO);
    }

    proptest::proptest! {
        // `advance_to` accepts exactly the targets at or after `now` and
        // panics on every rewind attempt, for arbitrary instants.
        #[test]
        fn prop_advance_to_rejects_rewinds(start in 0u64..1_000_000, target in 0u64..1_000_000) {
            let result = std::panic::catch_unwind(|| {
                let mut c = Clock::starting_at(SimTime::from_micros(start));
                c.advance_to(SimTime::from_micros(target));
                c.now()
            });
            if target >= start {
                proptest::prop_assert_eq!(result.ok(), Some(SimTime::from_micros(target)));
            } else {
                proptest::prop_assert!(result.is_err(), "rewind must panic");
            }
        }

        // Advancing in arbitrary increments never moves the clock backwards.
        #[test]
        fn prop_advance_by_is_monotone(steps in proptest::collection::vec(0u64..1_000_000, 0..100)) {
            let mut c = Clock::new();
            let mut prev = c.now();
            for &step in &steps {
                c.advance_by(SimDuration::from_micros(step));
                proptest::prop_assert!(c.now() >= prev);
                prev = c.now();
            }
        }
    }
}
