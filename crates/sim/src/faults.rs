//! Seeded fault injection: deterministic chaos for the simulation.
//!
//! Production memory pools are not the always-on 56 Gbps InfiniBand of
//! the paper's testbed (§8.1): links brown out, pool nodes die, and idle
//! containers crash. This module turns those hazards into *data*: a
//! [`FaultSpec`] describes the hazard rates, and [`FaultSpec::plan`]
//! expands it into a concrete [`FaultPlan`] — a fixed timeline of link
//! windows, node-loss events and container crashes — using a dedicated
//! [`SimRng`] stream derived from the spec's seed.
//!
//! # Determinism contract
//!
//! The plan is a pure function of `(spec, horizon)`: the same seed always
//! yields the same timeline, byte for byte, independent of anything else
//! the simulation draws. Each fault category forks its own RNG stream, so
//! enabling outages does not perturb the crash schedule and vice versa.
//! An empty plan ([`FaultPlan::empty`]) injects nothing and must leave a
//! simulation bit-identical to one that never heard of faults.
//!
//! # Examples
//!
//! ```
//! use faasmem_sim::faults::FaultSpec;
//! use faasmem_sim::{SimDuration, SimTime};
//!
//! let spec = FaultSpec::new(7).outages(
//!     SimDuration::from_mins(5),
//!     SimDuration::from_secs(30),
//! );
//! let plan = spec.plan(SimTime::from_mins(60));
//! assert_eq!(plan, spec.plan(SimTime::from_mins(60))); // same seed, same plan
//! assert!(!plan.link.is_empty());
//! ```

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One contiguous window during which the pool link is impaired.
///
/// `factor` scales the link's effective service rate: `0.0` is a full
/// outage, values in `(0, 1)` are brown-outs. Factor `1.0` windows are
/// dropped at normalization — they would be no-ops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Effective-rate multiplier inside the window (`0.0` = outage).
    pub factor: f64,
}

/// A sorted, non-overlapping set of [`LinkWindow`]s.
///
/// Where generated windows overlap, the *worst* (lowest) factor wins —
/// an outage inside a brown-out is still an outage.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkSchedule {
    windows: Vec<LinkWindow>,
}

impl LinkSchedule {
    /// A schedule with no impairment windows at all.
    pub fn empty() -> Self {
        LinkSchedule::default()
    }

    /// Builds a schedule from arbitrary (possibly overlapping, unsorted)
    /// windows, normalizing to sorted disjoint segments with the minimum
    /// factor winning on overlap.
    ///
    /// # Panics
    ///
    /// Panics if a window's factor is negative, not finite, or ≥ 1
    /// (a factor-1 window is meaningless; drop it instead).
    pub fn from_windows(windows: Vec<LinkWindow>) -> Self {
        for w in &windows {
            assert!(
                w.factor.is_finite() && (0.0..1.0).contains(&w.factor),
                "window factor {} out of [0, 1)",
                w.factor
            );
        }
        let mut windows: Vec<LinkWindow> =
            windows.into_iter().filter(|w| w.end > w.start).collect();
        windows.sort_by_key(|w| (w.start, w.end));
        // Sweep the boundary instants; each inter-boundary segment takes
        // the minimum factor of the windows covering it. O(n²) on the
        // window count, which a fault plan keeps in the dozens.
        let mut bounds: Vec<SimTime> = Vec::with_capacity(windows.len() * 2);
        for w in &windows {
            bounds.push(w.start);
            bounds.push(w.end);
        }
        bounds.sort_unstable();
        bounds.dedup();
        let mut out: Vec<LinkWindow> = Vec::new();
        for pair in bounds.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            let factor = windows
                .iter()
                .filter(|w| w.start <= start && w.end >= end)
                .map(|w| w.factor)
                .fold(f64::INFINITY, f64::min);
            if !factor.is_finite() {
                continue; // gap between windows
            }
            match out.last_mut() {
                Some(prev) if prev.end == start && prev.factor == factor => prev.end = end,
                _ => out.push(LinkWindow { start, end, factor }),
            }
        }
        LinkSchedule { windows: out }
    }

    /// `true` when the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The normalized windows, sorted and disjoint.
    pub fn windows(&self) -> &[LinkWindow] {
        &self.windows
    }

    /// The link's effective-rate factor at instant `t` (1.0 = healthy).
    pub fn factor_at(&self, t: SimTime) -> f64 {
        self.windows
            .iter()
            .find(|w| w.start <= t && t < w.end)
            .map_or(1.0, |w| w.factor)
    }

    /// The first instant `≥ t` at which the link carries *any* traffic
    /// (factor > 0): `t` itself outside outage windows, else the end of
    /// the outage run covering `t`.
    pub fn available_from(&self, t: SimTime) -> SimTime {
        let mut at = t;
        for w in &self.windows {
            if w.end <= at || w.factor > 0.0 {
                continue;
            }
            if w.start > at {
                break; // sorted: the outage starts after `at`
            }
            at = w.end;
        }
        at
    }

    /// Total full-outage (factor 0) time in `[SimTime::ZERO, t)` — the
    /// numerator of the availability metric.
    pub fn downtime_before(&self, t: SimTime) -> SimDuration {
        let mut down = SimDuration::ZERO;
        for w in &self.windows {
            if w.factor > 0.0 || w.start >= t {
                continue;
            }
            down += w.end.min(t).saturating_since(w.start);
        }
        down
    }
}

/// A scheduled pool-node loss: a `fraction` of the containers holding
/// remote pages lose them (the node that held those pages died).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLossEvent {
    /// When the node dies.
    pub at: SimTime,
    /// Fraction of remote-page-holding containers affected, in `(0, 1]`.
    pub fraction: f64,
}

/// A scheduled death of one *pool* node in a multi-node pool fabric:
/// every replica/fragment stored on node `node` is destroyed at `at`.
///
/// Unlike [`NodeLossEvent`] (which hits a fraction of remote-holding
/// containers), this is keyed by pool-node id so a redundancy layer can
/// reason about exactly which placements died and which survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolNodeLossEvent {
    /// When the pool node dies.
    pub at: SimTime,
    /// Id of the pool node that dies, in `[0, pool_node_count)`.
    pub node: u32,
}

/// A scheduled crash of one idle container; `pick` selects the victim
/// deterministically among the containers alive at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// When the crash fires.
    pub at: SimTime,
    /// Victim selector: index `pick % alive` into the id-sorted set.
    pub pick: u64,
}

/// A concrete fault timeline: everything the platform will inject over
/// one run. Produced by [`FaultSpec::plan`] or hand-built in tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Link outage / brown-out windows.
    pub link: LinkSchedule,
    /// Pool-node loss events, sorted by time.
    pub node_losses: Vec<NodeLossEvent>,
    /// Idle-container crash events, sorted by time.
    pub crashes: Vec<CrashEvent>,
    /// Whole-pool-node deaths keyed by node id, sorted by time.
    pub pool_node_losses: Vec<PoolNodeLossEvent>,
}

impl FaultPlan {
    /// The plan that injects nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// `true` when no fault of any category is scheduled.
    pub fn is_empty(&self) -> bool {
        self.link.is_empty()
            && self.node_losses.is_empty()
            && self.crashes.is_empty()
            && self.pool_node_losses.is_empty()
    }
}

/// Hazard rates for the seeded fault injector. Every category is off by
/// default; enable the ones an experiment stresses.
///
/// Arrival processes are Poisson (exponential gaps at the configured
/// MTBF), matching the memoryless failure model rack-scale studies
/// assume; outage and brown-out durations are exponential around their
/// configured means.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault-plan RNG (independent of the platform seed).
    pub seed: u64,
    /// Mean time between full link outages; `None` disables them.
    pub outage_mtbf: Option<SimDuration>,
    /// Mean duration of one outage.
    pub outage_mean: SimDuration,
    /// Mean time between link brown-outs; `None` disables them.
    pub brownout_mtbf: Option<SimDuration>,
    /// Mean duration of one brown-out.
    pub brownout_mean: SimDuration,
    /// Effective-rate factor during a brown-out, in `(0, 1)`.
    pub brownout_factor: f64,
    /// Mean time between pool-node losses; `None` disables them.
    pub node_loss_mtbf: Option<SimDuration>,
    /// Fraction of remote-holding containers hit per node loss, `(0, 1]`.
    pub node_loss_fraction: f64,
    /// Mean time between idle-container crashes; `None` disables them.
    pub crash_mtbf: Option<SimDuration>,
    /// Mean time between whole-pool-node deaths; `None` disables them.
    pub pool_node_loss_mtbf: Option<SimDuration>,
    /// Number of pool nodes the fabric runs; victims are drawn uniformly
    /// from `[0, pool_node_count)`. Only meaningful with
    /// `pool_node_loss_mtbf` set.
    pub pool_node_count: u32,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 0xFA17,
            outage_mtbf: None,
            outage_mean: SimDuration::from_secs(30),
            brownout_mtbf: None,
            brownout_mean: SimDuration::from_secs(60),
            brownout_factor: 0.25,
            node_loss_mtbf: None,
            node_loss_fraction: 0.5,
            crash_mtbf: None,
            pool_node_loss_mtbf: None,
            pool_node_count: 1,
        }
    }
}

impl FaultSpec {
    /// A spec with every category disabled, seeded for later `plan` calls.
    pub fn new(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// Enables full link outages at the given MTBF and mean duration.
    pub fn outages(mut self, mtbf: SimDuration, mean: SimDuration) -> Self {
        self.outage_mtbf = Some(mtbf);
        self.outage_mean = mean;
        self
    }

    /// Enables link brown-outs at the given MTBF, mean duration and
    /// effective-rate factor.
    pub fn brownouts(mut self, mtbf: SimDuration, mean: SimDuration, factor: f64) -> Self {
        self.brownout_mtbf = Some(mtbf);
        self.brownout_mean = mean;
        self.brownout_factor = factor;
        self
    }

    /// Enables pool-node losses at the given MTBF hitting the given
    /// fraction of remote-holding containers.
    pub fn node_losses(mut self, mtbf: SimDuration, fraction: f64) -> Self {
        self.node_loss_mtbf = Some(mtbf);
        self.node_loss_fraction = fraction;
        self
    }

    /// Enables idle-container crashes at the given MTBF.
    pub fn crashes(mut self, mtbf: SimDuration) -> Self {
        self.crash_mtbf = Some(mtbf);
        self
    }

    /// Enables whole-pool-node deaths at the given MTBF across a fabric
    /// of `nodes` pool nodes.
    pub fn pool_node_losses(mut self, mtbf: SimDuration, nodes: u32) -> Self {
        self.pool_node_loss_mtbf = Some(mtbf);
        self.pool_node_count = nodes;
        self
    }

    /// `true` when no category is enabled (the plan will be empty).
    pub fn is_inert(&self) -> bool {
        self.outage_mtbf.is_none()
            && self.brownout_mtbf.is_none()
            && self.node_loss_mtbf.is_none()
            && self.crash_mtbf.is_none()
            && self.pool_node_loss_mtbf.is_none()
    }

    /// Checks the spec's numeric ranges, returning one message per
    /// problem (empty = valid). Used by the drivers' startup validation.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let positive = |label: &str, d: Option<SimDuration>, problems: &mut Vec<String>| {
            if let Some(d) = d {
                if d.is_zero() {
                    problems.push(format!("fault spec: {label} MTBF must be positive"));
                }
            }
        };
        positive("outage", self.outage_mtbf, &mut problems);
        positive("brownout", self.brownout_mtbf, &mut problems);
        positive("node-loss", self.node_loss_mtbf, &mut problems);
        positive("crash", self.crash_mtbf, &mut problems);
        positive("pool-node-loss", self.pool_node_loss_mtbf, &mut problems);
        if self.pool_node_loss_mtbf.is_some() && self.pool_node_count == 0 {
            problems.push("fault spec: pool-node losses need at least one pool node".into());
        }
        if self.outage_mtbf.is_some() && self.outage_mean.is_zero() {
            problems.push("fault spec: outage mean duration must be positive".into());
        }
        if self.brownout_mtbf.is_some() && self.brownout_mean.is_zero() {
            problems.push("fault spec: brownout mean duration must be positive".into());
        }
        if !(self.brownout_factor.is_finite()
            && 0.0 < self.brownout_factor
            && self.brownout_factor < 1.0)
        {
            problems.push(format!(
                "fault spec: brownout factor {} must be in (0, 1)",
                self.brownout_factor
            ));
        }
        if !(self.node_loss_fraction.is_finite()
            && 0.0 < self.node_loss_fraction
            && self.node_loss_fraction <= 1.0)
        {
            problems.push(format!(
                "fault spec: node-loss fraction {} must be in (0, 1]",
                self.node_loss_fraction
            ));
        }
        problems
    }

    /// Expands the spec into a concrete timeline covering `[0, horizon)`.
    /// Event *starts* are bounded by `horizon`; a window may extend past
    /// it (the platform drains keep-alive past the trace end, so pass a
    /// horizon that covers the drain).
    ///
    /// Deterministic: same `(self, horizon)` → identical plan. Each
    /// category draws from its own forked stream, so categories do not
    /// perturb one another.
    pub fn plan(&self, horizon: SimTime) -> FaultPlan {
        let mut root = SimRng::seed_from(self.seed);
        let mut outage_rng = root.fork(1);
        let mut brownout_rng = root.fork(2);
        let mut loss_rng = root.fork(3);
        let mut crash_rng = root.fork(4);
        // Forked *after* the legacy streams so plans that never enable
        // pool-node losses stay byte-identical to pre-fabric plans.
        let mut pool_loss_rng = root.fork(5);

        let mut windows = Vec::new();
        if let Some(mtbf) = self.outage_mtbf {
            for (start, len) in poisson_windows(&mut outage_rng, mtbf, self.outage_mean, horizon) {
                windows.push(LinkWindow {
                    start,
                    end: start.saturating_add(len),
                    factor: 0.0,
                });
            }
        }
        if let Some(mtbf) = self.brownout_mtbf {
            for (start, len) in
                poisson_windows(&mut brownout_rng, mtbf, self.brownout_mean, horizon)
            {
                windows.push(LinkWindow {
                    start,
                    end: start.saturating_add(len),
                    factor: self.brownout_factor,
                });
            }
        }

        let mut node_losses = Vec::new();
        if let Some(mtbf) = self.node_loss_mtbf {
            for at in poisson_instants(&mut loss_rng, mtbf, horizon) {
                node_losses.push(NodeLossEvent {
                    at,
                    fraction: self.node_loss_fraction,
                });
            }
        }

        let mut crashes = Vec::new();
        if let Some(mtbf) = self.crash_mtbf {
            for at in poisson_instants(&mut crash_rng, mtbf, horizon) {
                let pick = crash_rng.next_u64();
                crashes.push(CrashEvent { at, pick });
            }
        }

        let mut pool_node_losses = Vec::new();
        if let Some(mtbf) = self.pool_node_loss_mtbf {
            let nodes = u64::from(self.pool_node_count.max(1));
            for at in poisson_instants(&mut pool_loss_rng, mtbf, horizon) {
                let node = (pool_loss_rng.next_u64() % nodes) as u32;
                pool_node_losses.push(PoolNodeLossEvent { at, node });
            }
        }

        FaultPlan {
            link: LinkSchedule::from_windows(windows),
            node_losses,
            crashes,
            pool_node_losses,
        }
    }
}

/// Poisson arrival instants in `[0, horizon)` with exponential gaps.
fn poisson_instants(rng: &mut SimRng, mtbf: SimDuration, horizon: SimTime) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        // At least 1 µs between events so zero-gap draws cannot spin.
        let gap = rng.exp_duration(mtbf).max(SimDuration::from_micros(1));
        t = t.saturating_add(gap);
        if t >= horizon {
            return out;
        }
        out.push(t);
    }
}

/// Poisson-started windows with exponential lengths; the gap is measured
/// from the previous window's *end* so windows of one category never
/// self-overlap.
fn poisson_windows(
    rng: &mut SimRng,
    mtbf: SimDuration,
    mean_len: SimDuration,
    horizon: SimTime,
) -> Vec<(SimTime, SimDuration)> {
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let gap = rng.exp_duration(mtbf).max(SimDuration::from_micros(1));
        t = t.saturating_add(gap);
        if t >= horizon {
            return out;
        }
        let len = rng.exp_duration(mean_len).max(SimDuration::from_micros(1));
        out.push((t, len));
        t = t.saturating_add(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_spec(seed: u64) -> FaultSpec {
        FaultSpec::new(seed)
            .outages(SimDuration::from_mins(5), SimDuration::from_secs(20))
            .brownouts(SimDuration::from_mins(3), SimDuration::from_secs(45), 0.3)
            .node_losses(SimDuration::from_mins(20), 0.5)
            .crashes(SimDuration::from_mins(10))
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert_eq!(plan.link.factor_at(SimTime::from_secs(5)), 1.0);
        assert_eq!(
            plan.link.available_from(SimTime::from_secs(5)),
            SimTime::from_secs(5)
        );
        assert_eq!(
            plan.link.downtime_before(SimTime::from_mins(60)),
            SimDuration::ZERO
        );
        assert!(FaultSpec::new(1).is_inert());
        assert!(FaultSpec::new(1).plan(SimTime::from_mins(60)).is_empty());
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let horizon = SimTime::from_mins(60);
        let a = chaos_spec(42).plan(horizon);
        let b = chaos_spec(42).plan(horizon);
        assert_eq!(a, b);
        let c = chaos_spec(43).plan(horizon);
        assert_ne!(a, c, "different seeds should give different timelines");
    }

    #[test]
    fn categories_use_decoupled_streams() {
        let horizon = SimTime::from_mins(120);
        let crash_only = FaultSpec::new(9).crashes(SimDuration::from_mins(10));
        let with_outages = crash_only
            .clone()
            .outages(SimDuration::from_mins(5), SimDuration::from_secs(20));
        assert_eq!(
            crash_only.plan(horizon).crashes,
            with_outages.plan(horizon).crashes,
            "enabling outages must not perturb the crash schedule"
        );
    }

    #[test]
    fn pool_node_losses_do_not_perturb_legacy_streams() {
        let horizon = SimTime::from_mins(120);
        let legacy = chaos_spec(9);
        let with_pool_losses = legacy
            .clone()
            .pool_node_losses(SimDuration::from_mins(8), 3);
        let a = legacy.plan(horizon);
        let b = with_pool_losses.plan(horizon);
        assert_eq!(a.link, b.link, "link schedule must not move");
        assert_eq!(a.node_losses, b.node_losses);
        assert_eq!(a.crashes, b.crashes);
        assert!(a.pool_node_losses.is_empty());
        assert!(!b.pool_node_losses.is_empty());
    }

    #[test]
    fn pool_node_losses_are_deterministic_and_in_range() {
        let horizon = SimTime::from_mins(240);
        let spec = FaultSpec::new(11).pool_node_losses(SimDuration::from_mins(5), 4);
        let a = spec.plan(horizon);
        assert_eq!(a, spec.plan(horizon));
        assert!(!a.pool_node_losses.is_empty());
        let mut prev = SimTime::ZERO;
        for loss in &a.pool_node_losses {
            assert!(loss.node < 4, "node {} out of fabric", loss.node);
            assert!(loss.at >= prev, "events must be time-sorted");
            assert!(loss.at < horizon);
            prev = loss.at;
        }
    }

    #[test]
    fn pool_node_loss_validation_needs_nodes() {
        let mut spec = FaultSpec::new(1).pool_node_losses(SimDuration::from_mins(5), 2);
        assert!(spec.validate().is_empty());
        spec.pool_node_count = 0;
        assert!(spec
            .validate()
            .iter()
            .any(|p| p.contains("at least one pool node")));
        spec.pool_node_loss_mtbf = Some(SimDuration::ZERO);
        assert!(spec
            .validate()
            .iter()
            .any(|p| p.contains("pool-node-loss MTBF")));
    }

    #[test]
    fn windows_are_sorted_and_disjoint() {
        let plan = chaos_spec(7).plan(SimTime::from_mins(240));
        let windows = plan.link.windows();
        assert!(!windows.is_empty());
        for pair in windows.windows(2) {
            assert!(pair[0].end <= pair[1].start, "overlap: {pair:?}");
        }
    }

    #[test]
    fn overlap_normalization_takes_min_factor() {
        let s = LinkSchedule::from_windows(vec![
            LinkWindow {
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(30),
                factor: 0.5,
            },
            LinkWindow {
                start: SimTime::from_secs(20),
                end: SimTime::from_secs(40),
                factor: 0.0,
            },
        ]);
        assert_eq!(s.factor_at(SimTime::from_secs(15)), 0.5);
        assert_eq!(s.factor_at(SimTime::from_secs(25)), 0.0, "outage wins");
        assert_eq!(s.factor_at(SimTime::from_secs(35)), 0.0);
        assert_eq!(s.factor_at(SimTime::from_secs(45)), 1.0);
    }

    #[test]
    fn adjacent_equal_factor_windows_merge() {
        let s = LinkSchedule::from_windows(vec![
            LinkWindow {
                start: SimTime::from_secs(1),
                end: SimTime::from_secs(2),
                factor: 0.0,
            },
            LinkWindow {
                start: SimTime::from_secs(2),
                end: SimTime::from_secs(3),
                factor: 0.0,
            },
        ]);
        assert_eq!(s.windows().len(), 1);
        assert_eq!(s.windows()[0].end, SimTime::from_secs(3));
    }

    #[test]
    fn available_from_skips_outage_runs() {
        let s = LinkSchedule::from_windows(vec![
            LinkWindow {
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(20),
                factor: 0.0,
            },
            LinkWindow {
                start: SimTime::from_secs(20),
                end: SimTime::from_secs(25),
                factor: 0.1,
            },
        ]);
        assert_eq!(
            s.available_from(SimTime::from_secs(5)),
            SimTime::from_secs(5)
        );
        // Inside the outage: first instant with any capacity is 20 s
        // (the brown-out still carries traffic).
        assert_eq!(
            s.available_from(SimTime::from_secs(12)),
            SimTime::from_secs(20)
        );
        assert_eq!(
            s.available_from(SimTime::from_secs(22)),
            SimTime::from_secs(22)
        );
    }

    #[test]
    fn downtime_counts_only_outages() {
        let s = LinkSchedule::from_windows(vec![
            LinkWindow {
                start: SimTime::from_secs(10),
                end: SimTime::from_secs(20),
                factor: 0.0,
            },
            LinkWindow {
                start: SimTime::from_secs(30),
                end: SimTime::from_secs(40),
                factor: 0.5,
            },
        ]);
        assert_eq!(
            s.downtime_before(SimTime::from_secs(100)),
            SimDuration::from_secs(10)
        );
        // Truncated mid-outage.
        assert_eq!(
            s.downtime_before(SimTime::from_secs(15)),
            SimDuration::from_secs(5)
        );
        assert_eq!(s.downtime_before(SimTime::from_secs(5)), SimDuration::ZERO);
    }

    #[test]
    fn event_starts_respect_horizon() {
        let horizon = SimTime::from_mins(30);
        let plan = chaos_spec(3).plan(horizon);
        for w in plan.link.windows() {
            assert!(w.start < horizon);
        }
        for e in &plan.node_losses {
            assert!(e.at < horizon);
        }
        for c in &plan.crashes {
            assert!(c.at < horizon);
        }
    }

    #[test]
    fn validate_flags_nonsense() {
        let mut spec = chaos_spec(1);
        assert!(spec.validate().is_empty());
        spec.brownout_factor = 1.5;
        spec.node_loss_fraction = 0.0;
        spec.outage_mean = SimDuration::ZERO;
        let problems = spec.validate();
        assert_eq!(problems.len(), 3, "{problems:?}");
        assert!(problems.iter().any(|p| p.contains("brownout factor")));
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn bad_window_factor_panics() {
        let _ = LinkSchedule::from_windows(vec![LinkWindow {
            start: SimTime::ZERO,
            end: SimTime::from_secs(1),
            factor: 1.0,
        }]);
    }

    proptest::proptest! {
        // Satellite property: same seed → identical FaultPlan timeline.
        #[test]
        fn prop_same_seed_same_plan(seed in 0u64..1_000_000, horizon_mins in 1u64..240) {
            let horizon = SimTime::from_mins(horizon_mins);
            let a = chaos_spec(seed).plan(horizon);
            let b = chaos_spec(seed).plan(horizon);
            proptest::prop_assert_eq!(a, b);
        }

        // Normalization invariant: windows sorted, disjoint, factors < 1.
        #[test]
        fn prop_schedules_are_normalized(seed in 0u64..1_000_000) {
            let plan = chaos_spec(seed).plan(SimTime::from_mins(120));
            let ws = plan.link.windows();
            for w in ws {
                proptest::prop_assert!(w.start < w.end);
                proptest::prop_assert!((0.0..1.0).contains(&w.factor));
            }
            for pair in ws.windows(2) {
                proptest::prop_assert!(pair[0].end <= pair[1].start);
            }
        }
    }
}
