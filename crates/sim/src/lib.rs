#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine for the FaaSMem reproduction.
//!
//! The FaaSMem paper evaluates a kernel mechanism on a two-node InfiniBand
//! cluster. This crate provides the substrate for reproducing those
//! experiments in software: a microsecond-resolution simulated clock
//! ([`SimTime`]), a deterministic event queue ([`EventQueue`]) with stable
//! FIFO tie-breaking, and a seedable random-number layer ([`SimRng`]) so
//! every experiment regenerates byte-identically.
//!
//! # Examples
//!
//! ```
//! use faasmem_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::from_secs(2), "second");
//! queue.push(SimTime::from_secs(1), "first");
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(t, SimTime::from_secs(1));
//! assert_eq!(ev, "first");
//! ```

pub mod clock;
pub mod faults;
pub mod queue;
pub mod reference;
pub mod rng;
pub mod shard;
pub mod time;

pub use clock::Clock;
pub use faults::{
    CrashEvent, FaultPlan, FaultSpec, LinkSchedule, LinkWindow, NodeLossEvent, PoolNodeLossEvent,
};
pub use queue::{EventQueue, ScheduledEvent};
pub use reference::ReferenceEventQueue;
pub use rng::SimRng;
pub use shard::{ShardMap, ShardedEventQueue};
pub use time::{SimDuration, SimTime};
