//! The deterministic event queue at the heart of the simulator.
//!
//! Events scheduled for the same instant are popped in the order they were
//! pushed (FIFO tie-breaking via a monotone sequence number), which is what
//! makes whole-system runs reproducible across platforms.
//!
//! # Calendar layout
//!
//! [`EventQueue`] is a *calendar queue* (Brown 1988), the structure
//! parallel discrete-event engines reach for once the classic binary
//! heap becomes the bottleneck: a ring of time buckets, each spanning a
//! fixed width of simulated time, plus a sorted overflow tier for
//! events past the ring horizon (policy ticks, fault plans). A push is
//! an O(1) append onto its bucket; a pop drains the cursor bucket in
//! `(time, seq)` order, sorting each bucket lazily at drain time — and
//! skipping even that when events arrived already ordered, the common
//! case for trace seeding and same-instant groups. The bucket width
//! self-tunes from the observed event span, re-laid out exactly like a
//! hash-table rehash (geometric growth, amortized O(1) per event).
//!
//! None of the geometry is observable: the pop order is the total
//! `(time, seq)` order regardless of width or bucket count, pinned
//! against the retired heap implementation (kept as
//! [`ReferenceEventQueue`](crate::reference::ReferenceEventQueue)) by
//! an op-interleaving property test.

use crate::time::SimTime;

/// An event with its scheduled firing time and insertion sequence.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone insertion counter used for FIFO tie-breaking.
    pub seq: u64,
    /// The caller-defined payload.
    pub event: E,
}

impl<E> ScheduledEvent<E> {
    /// The total-order key: earliest time first, then insertion order.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

/// Fewest ring buckets; the geometry never shrinks below this.
const MIN_BUCKETS: usize = 16;
/// Most ring buckets; beyond this, buckets simply hold more events
/// (the in-bucket drain sort keeps them ordered).
const MAX_BUCKETS: usize = 64 * 1024;
/// Bucket width before the first self-tuning re-layout.
const INITIAL_WIDTH_US: u64 = 1_000;

/// Sort state of one bucket's pending events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BucketOrder {
    /// Appends so far are ascending by `(at, seq)` — the common case:
    /// seeding walks the trace in time order and same-instant groups
    /// ascend by sequence. Draining only needs a reverse.
    Ascending,
    /// Appends arrived out of order; sort before draining.
    Unsorted,
    /// Sorted descending, so the minimum sits at the tail and a drain
    /// step is a plain O(1) `Vec::pop`.
    Descending,
}

#[derive(Debug, Clone)]
struct Bucket<E> {
    events: Vec<ScheduledEvent<E>>,
    order: BucketOrder,
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket {
            events: Vec::new(),
            order: BucketOrder::Ascending,
        }
    }

    /// Appends one event, downgrading the order flag only when the new
    /// key actually breaks the maintained order.
    fn push(&mut self, ev: ScheduledEvent<E>) {
        match self.order {
            BucketOrder::Ascending => {
                if let Some(last) = self.events.last() {
                    if last.key() > ev.key() {
                        self.order = BucketOrder::Unsorted;
                    }
                }
            }
            BucketOrder::Descending => {
                // The tail is the current minimum; a smaller key keeps
                // the descending run intact (keys are unique).
                if let Some(last) = self.events.last() {
                    if last.key() < ev.key() {
                        self.order = BucketOrder::Unsorted;
                    }
                }
            }
            BucketOrder::Unsorted => {}
        }
        self.events.push(ev);
    }

    /// Brings the minimum to the tail so pops are O(1). Already-ordered
    /// appends (`Ascending`) only pay a reverse, never a sort.
    fn prepare(&mut self) {
        match self.order {
            BucketOrder::Ascending => self.events.reverse(),
            BucketOrder::Unsorted => self
                .events
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key())),
            BucketOrder::Descending => return,
        }
        self.order = BucketOrder::Descending;
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use faasmem_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), 'b');
/// q.push(SimTime::from_secs(1), 'c'); // same instant: FIFO order
/// q.push(SimTime::ZERO, 'a');
/// let drained: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(drained, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The bucket ring. `buckets[cursor]` covers `[ring_start,
    /// ring_start + width)`; each step ahead covers the next width.
    buckets: Vec<Bucket<E>>,
    /// Ring index of the current (earliest) bucket.
    cursor: usize,
    /// Inclusive lower bound of the cursor bucket, in microseconds.
    /// Events pushed before it (a "past push" after drains) clamp into
    /// the cursor bucket, where the drain sort delivers them first.
    ring_start: u64,
    /// Bucket width in microseconds (always at least 1).
    width: u64,
    /// Events currently held in ring buckets.
    ring_len: usize,
    /// Far-future events at or past the ring horizon. Kept unsorted
    /// until a promotion needs order; every element's key is greater
    /// than every ring event's key (the promotion in
    /// [`EventQueue::advance_cursor`] maintains this as the horizon
    /// grows).
    overflow: Vec<ScheduledEvent<E>>,
    /// `true` while `overflow` is descending by `(at, seq)` — soonest
    /// events at the tail, so a promotion pops them off the end without
    /// ever shifting the buffer.
    overflow_sorted: bool,
    /// Smallest `(at, seq)` in `overflow`, tracked incrementally so the
    /// per-pop promotion check is one compare.
    overflow_min: Option<(SimTime, u64)>,
    /// Pops since the last re-layout — the amortization meter for the
    /// occupancy-triggered re-tune in [`EventQueue::prepare_head`].
    pops_since_rebuild: usize,
    /// Run-long staging buffer for [`EventQueue::rebuild`], kept so
    /// re-layouts at a settled geometry allocate nothing.
    scratch: Vec<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::new()).collect(),
            cursor: 0,
            ring_start: 0,
            width: INITIAL_WIDTH_US,
            ring_len: 0,
            overflow: Vec::new(),
            overflow_sorted: true,
            overflow_min: None,
            pops_since_rebuild: 0,
            scratch: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with ring geometry pre-sized for
    /// `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut q = EventQueue::new();
        q.reserve(capacity);
        q
    }

    /// Exclusive upper bound of the ring, in microseconds (`u128` so
    /// the arithmetic never saturates near [`SimTime::MAX`]).
    #[inline]
    fn horizon(&self) -> u128 {
        u128::from(self.ring_start) + u128::from(self.width) * self.buckets.len() as u128
    }

    /// Ring index for an event at `at_us`, which must be below the
    /// horizon. Past pushes clamp to the cursor bucket.
    #[inline]
    fn bucket_index(&self, at_us: u64) -> usize {
        if at_us < self.ring_start {
            return self.cursor;
        }
        let offset = ((at_us - self.ring_start) / self.width) as usize;
        debug_assert!(offset < self.buckets.len(), "event past the ring horizon");
        (self.cursor + offset) % self.buckets.len()
    }

    /// Routes one scheduled event to its bucket or the overflow tier.
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        let at_us = ev.at.as_micros();
        if u128::from(at_us) >= self.horizon() {
            let key = ev.key();
            if self.overflow_min.is_none_or(|m| key < m) {
                self.overflow_min = Some(key);
            }
            if self.overflow_sorted {
                if let Some(last) = self.overflow.last() {
                    if last.key() < key {
                        self.overflow_sorted = false;
                    }
                }
            }
            self.overflow.push(ev);
        } else {
            let idx = self.bucket_index(at_us);
            self.buckets[idx].push(ev);
            self.ring_len += 1;
        }
    }

    /// Grows the ring when occupancy outpaces it — the hash-table
    /// rehash analogue, amortized O(1) per push.
    #[inline]
    fn maybe_grow(&mut self) {
        if self.len() > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.len());
        }
    }

    /// Shrinks the ring when it has become mostly empty slots, so tail
    /// drains never scan a stale oversized geometry.
    #[inline]
    fn maybe_shrink(&mut self) {
        if self.buckets.len() > MIN_BUCKETS && self.len() < self.buckets.len() / 8 {
            self.rebuild(self.len());
        }
    }

    /// Re-lays the calendar out for about `hint` events: picks a bucket
    /// count, re-estimates the width from the observed event span (the
    /// self-tuning rule: width ≈ 2 × mean inter-event gap, so the ring
    /// spans the whole pending population), re-anchors the ring at the
    /// earliest pending event and redistributes everything. O(n), and
    /// invisible to the pop order.
    fn rebuild(&mut self, hint: usize) {
        // Stage through the run-long scratch buffer; `append` moves the
        // events out while every source keeps its capacity, so a
        // re-layout at a settled geometry touches the allocator not at
        // all.
        let mut pending = std::mem::take(&mut self.scratch);
        debug_assert!(pending.is_empty());
        pending.reserve(self.ring_len + self.overflow.len());
        for bucket in &mut self.buckets {
            pending.append(&mut bucket.events);
            bucket.order = BucketOrder::Ascending;
        }
        pending.append(&mut self.overflow);
        self.ring_len = 0;
        self.overflow_sorted = true;
        self.overflow_min = None;
        self.pops_since_rebuild = 0;

        let buckets = hint.next_power_of_two().clamp(MIN_BUCKETS, MAX_BUCKETS);
        // Resize in place: surviving buckets keep their capacity.
        self.buckets.resize_with(buckets, Bucket::new);
        self.cursor = 0;

        let min = pending.iter().map(|e| e.at.as_micros()).min();
        let max = pending.iter().map(|e| e.at.as_micros()).max();
        if let (Some(min), Some(max)) = (min, max) {
            let span = u128::from(max - min);
            // Self-tuning rule: width ≈ 2 × mean inter-event gap — but
            // never so narrow that the capped ring fails to cover the
            // whole pending span. Without the floor, a wide-span
            // population would park mostly in overflow and every ring
            // drain would re-sort it: the classic capped-calendar
            // pathology.
            let mean_gap = span * 2 / pending.len() as u128;
            let cover = span / buckets as u128 + 1;
            self.width = u64::try_from(mean_gap.max(cover).max(1)).unwrap_or(u64::MAX);
            self.ring_start = min;
        } else {
            self.width = INITIAL_WIDTH_US;
            // Keep the anchor: a later past-push must still clamp.
        }
        for ev in pending.drain(..) {
            self.insert(ev);
        }
        self.scratch = pending;
    }

    /// Steps the cursor one bucket forward (the current one is empty)
    /// and promotes any overflow events the grown horizon caught up
    /// to, preserving the "overflow is entirely past the ring"
    /// invariant that makes the cursor bucket's minimum global.
    fn advance_cursor(&mut self) {
        debug_assert!(self.buckets[self.cursor].events.is_empty());
        self.cursor = (self.cursor + 1) % self.buckets.len();
        self.ring_start = self.ring_start.saturating_add(self.width);
        if self
            .overflow_min
            .is_some_and(|(at, _)| u128::from(at.as_micros()) < self.horizon())
        {
            self.promote_due_overflow();
        }
    }

    /// Moves every overflow event below the horizon into its ring
    /// bucket. The tier is sorted descending, so the due events form
    /// the tail and promotion is a shift-free tail drain — repeated
    /// promotions as the cursor walks never memmove the buffer.
    fn promote_due_overflow(&mut self) {
        if !self.overflow_sorted {
            self.overflow
                .sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.overflow_sorted = true;
        }
        let horizon = self.horizon();
        let split = self
            .overflow
            .partition_point(|ev| u128::from(ev.at.as_micros()) >= horizon);
        // Inline the bucket mapping so the drain's borrow of `overflow`
        // stays disjoint from `buckets`.
        let (cursor, ring_start, width, n) =
            (self.cursor, self.ring_start, self.width, self.buckets.len());
        for ev in self.overflow.drain(split..) {
            let at_us = ev.at.as_micros();
            let idx = if at_us < ring_start {
                cursor
            } else {
                (cursor + ((at_us - ring_start) / width) as usize) % n
            };
            self.buckets[idx].push(ev);
            self.ring_len += 1;
        }
        self.overflow_min = self.overflow.last().map(ScheduledEvent::key);
    }

    /// Positions the cursor on the earliest nonempty bucket and sorts
    /// it for draining. Returns `false` when nothing is pending. All
    /// the queue's laziness resolves here; afterwards the cursor
    /// bucket's tail is the global `(at, seq)` minimum.
    fn prepare_head(&mut self) -> bool {
        if self.ring_len == 0 && self.overflow.is_empty() {
            return false;
        }
        loop {
            if self.ring_len == 0 {
                // Ring drained dry: jump straight to the overflow tier,
                // re-tuning the geometry to the remaining population
                // (its span may be nothing like the drained one's).
                self.rebuild(self.len());
                debug_assert!(self.ring_len > 0, "rebuild anchors at the earliest event");
                continue;
            }
            let head = &self.buckets[self.cursor];
            let head_len = head.events.len();
            if head_len > 0 {
                // Re-tune when the head bucket has collected a wildly
                // disproportionate share of the population — a steady
                // churn of pop-one/push-one drifts the live window away
                // from the geometry the last layout was tuned for.
                // Checked only when the bucket needs sorting anyway
                // (order not yet Descending), so the multi-instant scan
                // amortizes against the sort it replaces; the pop meter
                // amortizes the O(n) re-layout to O(1) per pop. Buckets
                // holding one instant are skipped — no geometry splits
                // a same-instant burst, only the drain sort orders it.
                if head.order != BucketOrder::Descending
                    && head_len >= 64
                    && head_len > 8 * (self.len() / self.buckets.len() + 1)
                    && self.pops_since_rebuild >= self.len()
                    && head.events.iter().any(|e| e.at != head.events[0].at)
                {
                    self.rebuild(self.len());
                    continue;
                }
                self.buckets[self.cursor].prepare();
                return true;
            }
            self.advance_cursor();
        }
    }

    /// Schedules `event` to fire at `at`. Events at the same instant fire
    /// in insertion order.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert(ScheduledEvent { at, seq, event });
        self.maybe_grow();
    }

    /// Pre-sizes the ring geometry for `additional` more events, so a
    /// known batch of pushes triggers at most this one re-layout
    /// instead of a cascade of incremental doublings mid-batch.
    pub fn reserve(&mut self, additional: usize) {
        let target = self.len() + additional;
        if target > self.buckets.len() * 2 && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(target);
        }
    }

    /// Schedules a batch of events all firing at `at`, in iteration order
    /// (equivalent to pushing each in turn). The whole group resolves
    /// its destination once and lands as a single ascending append run
    /// on one bucket (or the overflow tier) — a group move, not a
    /// per-event search.
    pub fn push_at_many<I: IntoIterator<Item = E>>(&mut self, at: SimTime, events: I) {
        let iter = events.into_iter();
        self.reserve(iter.size_hint().0);
        let at_us = at.as_micros();
        if u128::from(at_us) >= self.horizon() {
            // Sequence stamps ascend within the group, so the tracked
            // minimum needs checking against the first element only —
            // and a group of two or more is itself an ascending run,
            // which always breaks the tier's descending order.
            let mut count = 0usize;
            for event in iter {
                let seq = self.next_seq;
                self.next_seq += 1;
                let ev = ScheduledEvent { at, seq, event };
                if count == 0 {
                    let key = ev.key();
                    if self.overflow_min.is_none_or(|m| key < m) {
                        self.overflow_min = Some(key);
                    }
                    if self.overflow_sorted {
                        if let Some(last) = self.overflow.last() {
                            if last.key() < key {
                                self.overflow_sorted = false;
                            }
                        }
                    }
                }
                count += 1;
                self.overflow.push(ev);
            }
            if count > 1 {
                self.overflow_sorted = false;
            }
        } else {
            let idx = self.bucket_index(at_us);
            let mut count = 0usize;
            {
                let next_seq = &mut self.next_seq;
                let bucket = &mut self.buckets[idx];
                for event in iter {
                    let seq = *next_seq;
                    *next_seq += 1;
                    bucket.push(ScheduledEvent { at, seq, event });
                    count += 1;
                }
            }
            self.ring_len += count;
        }
        self.maybe_grow();
    }

    /// Schedules `event` with an externally allocated sequence stamp in
    /// place of the queue's own counter.
    ///
    /// The shard-parallel engine hands out stamps from one global
    /// counter in event-processing order, so events split across
    /// per-shard queues and merged back reproduce the serial `(at,
    /// seq)` pop order exactly. The internal counter jumps past `stamp`
    /// so later plain [`EventQueue::push`]es can never collide with a
    /// stamped event.
    pub fn push_stamped(&mut self, at: SimTime, stamp: u64, event: E) {
        self.next_seq = self.next_seq.max(stamp + 1);
        self.insert(ScheduledEvent {
            at,
            seq: stamp,
            event,
        });
        self.maybe_grow();
    }

    /// Batch sibling of [`EventQueue::push_stamped`] — the stamped
    /// analogue of [`EventQueue::push_at_many`]: delivers a window's
    /// worth of pre-stamped cross-shard events straight into their
    /// target buckets.
    pub fn push_stamped_many<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = ScheduledEvent<E>>,
    {
        let iter = events.into_iter();
        self.reserve(iter.size_hint().0);
        for ev in iter {
            self.push_stamped(ev.at, ev.seq, ev.event);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_scheduled().map(|s| (s.at, s.event))
    }

    /// Removes and returns the earliest event together with its firing
    /// time and sequence stamp — the form the shard merge needs to
    /// re-deliver an event without re-stamping it.
    pub fn pop_scheduled(&mut self) -> Option<ScheduledEvent<E>> {
        if !self.prepare_head() {
            return None;
        }
        let bucket = &mut self.buckets[self.cursor];
        let ev = bucket.events.pop().expect("prepared bucket is nonempty");
        if bucket.events.is_empty() {
            bucket.order = BucketOrder::Ascending;
        }
        self.ring_len -= 1;
        self.pops_since_rebuild += 1;
        self.maybe_shrink();
        Some(ev)
    }

    /// The firing time of the earliest pending event.
    ///
    /// Takes `&mut self`: locating the head may advance the cursor and
    /// sort the head bucket (none of which changes the pop order).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.prepare_head() {
            return None;
        }
        self.buckets[self.cursor].events.last().map(|s| s.at)
    }

    /// A reference to the earliest pending event (see
    /// [`EventQueue::peek_time`] for why this takes `&mut self`).
    pub fn peek(&mut self) -> Option<&ScheduledEvent<E>> {
        if !self.prepare_head() {
            return None;
        }
        self.buckets[self.cursor].events.last()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events. Geometry and bucket capacity are
    /// retained for reuse; the sequence counter keeps counting.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.events.clear();
            bucket.order = BucketOrder::Ascending;
        }
        self.overflow.clear();
        self.overflow_sorted = true;
        self.overflow_min = None;
        self.ring_len = 0;
    }

    /// Number of ring buckets — introspection for tests and benches
    /// (the geometry is an implementation detail with no effect on pop
    /// order).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current bucket width in microseconds (introspection, like
    /// [`EventQueue::bucket_count`]).
    pub fn bucket_width_micros(&self) -> u64 {
        self.width
    }

    /// Events currently parked in the far-future overflow tier
    /// (introspection, like [`EventQueue::bucket_count`]).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.reserve(iter.size_hint().0);
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceEventQueue;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn collect_and_clear() {
        let mut q: EventQueue<u32> = vec![(SimTime::from_secs(1), 10), (SimTime::ZERO, 20)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 20)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn push_at_many_matches_individual_pushes() {
        let mut batched = EventQueue::new();
        batched.push(SimTime::from_secs(2), 'x');
        batched.reserve(3);
        batched.push_at_many(SimTime::from_secs(1), ['a', 'b', 'c']);
        batched.push(SimTime::from_secs(1), 'd');

        let mut plain = EventQueue::new();
        plain.push(SimTime::from_secs(2), 'x');
        for e in ['a', 'b', 'c', 'd'] {
            plain.push(SimTime::from_secs(1), e);
        }

        let drain = |q: &mut EventQueue<char>| -> Vec<(SimTime, char)> {
            std::iter::from_fn(|| q.pop()).collect()
        };
        assert_eq!(drain(&mut batched), drain(&mut plain));
    }

    #[test]
    fn stamped_pushes_merge_with_plain_pushes() {
        // A queue fed stamps out of the usual counter order must still
        // pop in (at, seq) order, and plain pushes afterwards must slot
        // in past the highest stamp seen.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push_stamped(t, 7, 'c');
        q.push_stamped(t, 2, 'b');
        q.push_stamped(SimTime::ZERO, 9, 'a');
        q.push(t, 'd'); // gets seq 10: after every stamped event
        assert_eq!(q.pop(), Some((SimTime::ZERO, 'a')));
        assert_eq!(q.pop(), Some((t, 'b')));
        assert_eq!(q.pop(), Some((t, 'c')));
        assert_eq!(q.pop(), Some((t, 'd')));
    }

    #[test]
    fn push_stamped_many_matches_individual_stamped_pushes() {
        let t = SimTime::from_millis(3);
        let evs = |base: u64| {
            (0..5u64).map(move |i| ScheduledEvent {
                at: t,
                seq: base + i,
                event: i,
            })
        };
        let mut batched = EventQueue::new();
        batched.push_stamped_many(evs(10));
        let mut plain = EventQueue::new();
        for ev in evs(10) {
            plain.push_stamped(ev.at, ev.seq, ev.event);
        }
        let drain = |q: &mut EventQueue<u64>| -> Vec<ScheduledEvent<u64>> {
            std::iter::from_fn(|| q.pop_scheduled()).collect()
        };
        let (a, b) = (drain(&mut batched), drain(&mut plain));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
        }
    }

    #[test]
    fn pop_scheduled_exposes_the_stamp() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 'x');
        q.push(SimTime::from_secs(1), 'y');
        let first = q.pop_scheduled().unwrap();
        assert_eq!(
            (first.at, first.seq, first.event),
            (SimTime::from_secs(1), 1, 'y')
        );
        let second = q.pop_scheduled().unwrap();
        assert_eq!(
            (second.at, second.seq, second.event),
            (SimTime::from_secs(2), 0, 'x')
        );
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 'z');
        q.push(SimTime::from_secs(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_secs(5), 'm');
        assert_eq!(q.pop().unwrap().1, 'm');
        assert_eq!(q.pop().unwrap().1, 'z');
    }

    #[test]
    fn far_past_push_after_drains_pops_next() {
        // Drain far enough that the ring cursor has advanced well past
        // the origin, then push at the origin: the "past" event clamps
        // into the cursor bucket and pops before everything pending —
        // the queue is a priority queue, never a conveyor belt.
        let mut q = EventQueue::new();
        for s in 0..50u64 {
            q.push(SimTime::from_secs(s), s);
        }
        for s in 0..40u64 {
            assert_eq!(q.pop(), Some((SimTime::from_secs(s), s)));
        }
        q.push(SimTime::ZERO, 999);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 999)));
        for s in 40..50u64 {
            assert_eq!(q.pop(), Some((SimTime::from_secs(s), s)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_park_in_overflow_and_promote() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 'a');
        // Way past the fresh ring's horizon (16 buckets × 1ms).
        let far = SimTime::from_secs(3600);
        q.push(far, 'z');
        assert_eq!(q.overflow_len(), 1, "far-future event parks in overflow");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), 'a')));
        // The ring is now empty; the next pop re-anchors the ring at
        // the overflow tier and promotes the event out of it.
        assert_eq!(q.pop(), Some((far, 'z')));
        assert_eq!(q.overflow_len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_promotes_as_the_ring_advances() {
        // A mid-future event beyond the initial horizon must surface in
        // order between near events that keep the ring nonempty, i.e.
        // the cursor-advance promotion path (not the empty-ring jump).
        let mut q = EventQueue::new();
        let (w, n) = (q.bucket_width_micros(), q.bucket_count() as u64);
        // Fill every bucket so the cursor walks the whole ring.
        for b in 0..n {
            q.push(SimTime::from_micros(b * w), b);
        }
        // One event just past the horizon: overflow tier.
        q.push(SimTime::from_micros(n * w), n);
        assert_eq!(q.overflow_len(), 1);
        for b in 0..=n {
            assert_eq!(q.pop(), Some((SimTime::from_micros(b * w), b)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn reserve_pre_grows_the_ring_once() {
        let mut q: EventQueue<u32> = EventQueue::new();
        let before = q.bucket_count();
        q.reserve(10_000);
        let reserved = q.bucket_count();
        assert!(reserved > before, "reserve should pre-grow the ring");
        // The announced batch then fits without another re-layout.
        for i in 0..10_000u32 {
            q.push(SimTime::from_micros(u64::from(i)), i);
        }
        assert_eq!(q.bucket_count(), reserved);
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn geometry_self_tunes_at_rebuild() {
        let mut q: EventQueue<u64> = EventQueue::new();
        // 1000 events spread over 100 seconds: after growth the width
        // must stretch toward the mean gap (0.1s), not stay at 1ms.
        for i in 0..1000u64 {
            q.push(SimTime::from_millis(i * 100), i);
        }
        assert!(q.bucket_count() >= 512);
        assert!(q.bucket_width_micros() > INITIAL_WIDTH_US);
        let mut n = 0;
        while q.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
    }

    /// One scripted op against both the calendar queue and the retired
    /// heap, asserting identical observable behavior.
    fn apply_op(
        q: &mut EventQueue<u32>,
        r: &mut ReferenceEventQueue<u32>,
        op: &(u8, u64, u32),
        idx: usize,
    ) {
        let &(kind, t, payload) = op;
        let at = SimTime::from_micros(t);
        match kind % 6 {
            0 | 1 => {
                q.push(at, payload);
                r.push(at, payload);
            }
            2 => {
                let group = [payload, payload + 1, payload + 2];
                q.push_at_many(at, group);
                r.push_at_many(at, group);
            }
            3 => {
                // Stamps drawn ahead of both counters, like the shard
                // driver's global stamping. Non-monotone across ops but
                // unique (payload < 1000, idx unique per script): real
                // stamps come from one global counter and never repeat,
                // and with a repeated (at, seq) key neither queue's
                // tie-break would be defined.
                let stamp = 10_000 + u64::from(payload) * 1_000 + idx as u64;
                q.push_stamped(at, stamp, payload);
                r.push_stamped(at, stamp, payload);
            }
            4 => {
                let a = q.pop_scheduled().map(|e| (e.at, e.seq, e.event));
                let b = r.pop_scheduled().map(|e| (e.at, e.seq, e.event));
                assert_eq!(a, b);
            }
            _ => {
                assert_eq!(q.peek_time(), r.peek_time());
                assert_eq!(q.len(), r.len());
            }
        }
    }

    /// Drives one op script through both queues and drains them dry.
    fn run_oracle_script(ops: &[(u8, u64, u32)]) {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut r: ReferenceEventQueue<u32> = ReferenceEventQueue::new();
        for (idx, op) in ops.iter().enumerate() {
            apply_op(&mut q, &mut r, op, idx);
            assert_eq!(q.len(), r.len());
        }
        loop {
            let a = q.pop_scheduled().map(|e| (e.at, e.seq, e.event));
            let b = r.pop_scheduled().map(|e| (e.at, e.seq, e.event));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// The high-case-count oracle run the CI test job executes
    /// explicitly (`cargo test -p faasmem-sim --release -- --ignored`).
    /// Deterministic: the op scripts are derived from a fixed-seed
    /// xorshift walk, heavily mixing near/far/past times so every
    /// calendar path (clamp, wraparound, overflow, rebuild) is crossed
    /// thousands of times.
    #[test]
    #[ignore = "long oracle run; exercised explicitly by the CI test job"]
    fn queue_oracle_extended_equivalence() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..1500 {
            let len = 40 + (case % 160) as usize;
            let ops: Vec<(u8, u64, u32)> = (0..len)
                .map(|_| {
                    let r = next();
                    // Time scale cycles µs → ms → s so scripts cross
                    // bucket widths, the overflow horizon and rebuilds.
                    let t = match r % 3 {
                        0 => r % 1_000,
                        1 => (r % 1_000) * 1_000,
                        _ => (r % 100) * 1_000_000,
                    };
                    ((r >> 8) as u8, t, (r >> 16) as u32 % 1_000)
                })
                .collect();
            run_oracle_script(&ops);
        }
    }

    proptest::proptest! {
        // The tentpole equivalence oracle: for arbitrary interleavings
        // of pushes (single, grouped, stamped), pops and peeks over
        // wildly mixed time scales, the calendar queue's observable
        // behavior is exactly the retired heap's.
        #[test]
        fn prop_calendar_matches_heap_reference(
            ops in proptest::collection::vec(
                (0u8..255, 0u64..200_000_000, 0u32..1_000),
                0..250,
            )
        ) {
            run_oracle_script(&ops);
        }

        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                proptest::prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            proptest::prop_assert_eq!(count, times.len());
        }

        // Draining the queue is a stable sort by time: events pushed at
        // the same instant keep their relative insertion order even when
        // interleaved with events at other instants.
        #[test]
        fn prop_drain_is_stable_sort(times in proptest::collection::vec(0u64..16, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let drained: Vec<(SimTime, usize)> = std::iter::from_fn(|| q.pop()).collect();
            let mut expected: Vec<(SimTime, usize)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (SimTime::from_millis(t), i))
                .collect();
            // A stable sort by time alone keeps insertion order within ties.
            expected.sort_by_key(|&(t, _)| t);
            proptest::prop_assert_eq!(drained, expected);
        }

        #[test]
        fn prop_equal_times_fifo(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1);
            for i in 0..n {
                q.push(t, i);
            }
            for i in 0..n {
                proptest::prop_assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }
}
