//! The deterministic event queue at the heart of the simulator.
//!
//! Events scheduled for the same instant are popped in the order they were
//! pushed (FIFO tie-breaking via a monotone sequence number), which is what
//! makes whole-system runs reproducible across platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event with its scheduled firing time and insertion sequence.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotone insertion counter used for FIFO tie-breaking.
    pub seq: u64,
    /// The caller-defined payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // lowest-sequence) event surfaces first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use faasmem_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(1), 'b');
/// q.push(SimTime::from_secs(1), 'c'); // same instant: FIFO order
/// q.push(SimTime::ZERO, 'a');
/// let drained: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(drained, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`. Events at the same instant fire
    /// in insertion order.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Reserves room for at least `additional` more events, so a known
    /// batch of pushes performs at most one heap reallocation.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules a batch of events all firing at `at`, in iteration order
    /// (equivalent to pushing each in turn, minus repeated reallocation).
    pub fn push_at_many<I: IntoIterator<Item = E>>(&mut self, at: SimTime, events: I) {
        let iter = events.into_iter();
        self.heap.reserve(iter.size_hint().0);
        for event in iter {
            self.push(at, event);
        }
    }

    /// Schedules `event` with an externally allocated sequence stamp in
    /// place of the queue's own counter.
    ///
    /// The shard-parallel engine hands out stamps from one global
    /// counter in event-processing order, so events split across
    /// per-shard queues and merged back reproduce the serial `(at,
    /// seq)` pop order exactly. The internal counter jumps past `stamp`
    /// so later plain [`EventQueue::push`]es can never collide with a
    /// stamped event.
    pub fn push_stamped(&mut self, at: SimTime, stamp: u64, event: E) {
        self.next_seq = self.next_seq.max(stamp + 1);
        self.heap.push(ScheduledEvent {
            at,
            seq: stamp,
            event,
        });
    }

    /// Batch sibling of [`EventQueue::push_stamped`] — the stamped
    /// analogue of [`EventQueue::push_at_many`]: delivers a window's
    /// worth of pre-stamped cross-shard events with at most one heap
    /// reallocation.
    pub fn push_stamped_many<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = ScheduledEvent<E>>,
    {
        let iter = events.into_iter();
        self.heap.reserve(iter.size_hint().0);
        for ev in iter {
            self.push_stamped(ev.at, ev.seq, ev.event);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Removes and returns the earliest event together with its firing
    /// time and sequence stamp — the form the shard merge needs to
    /// re-deliver an event without re-stamping it.
    pub fn pop_scheduled(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop()
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// A reference to the earliest pending event.
    pub fn peek(&self) -> Option<&ScheduledEvent<E>> {
        self.heap.peek()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.heap.reserve(iter.size_hint().0);
        for (at, event) in iter {
            self.push(at, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3);
        q.push(SimTime::from_secs(1), 1);
        q.push(SimTime::from_secs(2), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn collect_and_clear() {
        let mut q: EventQueue<u32> = vec![(SimTime::from_secs(1), 10), (SimTime::ZERO, 20)]
            .into_iter()
            .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::ZERO, 20)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn push_at_many_matches_individual_pushes() {
        let mut batched = EventQueue::new();
        batched.push(SimTime::from_secs(2), 'x');
        batched.reserve(3);
        batched.push_at_many(SimTime::from_secs(1), ['a', 'b', 'c']);
        batched.push(SimTime::from_secs(1), 'd');

        let mut plain = EventQueue::new();
        plain.push(SimTime::from_secs(2), 'x');
        for e in ['a', 'b', 'c', 'd'] {
            plain.push(SimTime::from_secs(1), e);
        }

        let drain = |q: &mut EventQueue<char>| -> Vec<(SimTime, char)> {
            std::iter::from_fn(|| q.pop()).collect()
        };
        assert_eq!(drain(&mut batched), drain(&mut plain));
    }

    #[test]
    fn stamped_pushes_merge_with_plain_pushes() {
        // A queue fed stamps out of the usual counter order must still
        // pop in (at, seq) order, and plain pushes afterwards must slot
        // in past the highest stamp seen.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.push_stamped(t, 7, 'c');
        q.push_stamped(t, 2, 'b');
        q.push_stamped(SimTime::ZERO, 9, 'a');
        q.push(t, 'd'); // gets seq 10: after every stamped event
        assert_eq!(q.pop(), Some((SimTime::ZERO, 'a')));
        assert_eq!(q.pop(), Some((t, 'b')));
        assert_eq!(q.pop(), Some((t, 'c')));
        assert_eq!(q.pop(), Some((t, 'd')));
    }

    #[test]
    fn push_stamped_many_matches_individual_stamped_pushes() {
        let t = SimTime::from_millis(3);
        let evs = |base: u64| {
            (0..5u64).map(move |i| ScheduledEvent {
                at: t,
                seq: base + i,
                event: i,
            })
        };
        let mut batched = EventQueue::new();
        batched.push_stamped_many(evs(10));
        let mut plain = EventQueue::new();
        for ev in evs(10) {
            plain.push_stamped(ev.at, ev.seq, ev.event);
        }
        let drain = |q: &mut EventQueue<u64>| -> Vec<ScheduledEvent<u64>> {
            std::iter::from_fn(|| q.pop_scheduled()).collect()
        };
        let (a, b) = (drain(&mut batched), drain(&mut plain));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.at, x.seq, x.event), (y.at, y.seq, y.event));
        }
    }

    #[test]
    fn pop_scheduled_exposes_the_stamp() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), 'x');
        q.push(SimTime::from_secs(1), 'y');
        let first = q.pop_scheduled().unwrap();
        assert_eq!(
            (first.at, first.seq, first.event),
            (SimTime::from_secs(1), 1, 'y')
        );
        let second = q.pop_scheduled().unwrap();
        assert_eq!(
            (second.at, second.seq, second.event),
            (SimTime::from_secs(2), 0, 'x')
        );
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), 'z');
        q.push(SimTime::from_secs(1), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_secs(5), 'm');
        assert_eq!(q.pop().unwrap().1, 'm');
        assert_eq!(q.pop().unwrap().1, 'z');
    }

    proptest::proptest! {
        #[test]
        fn prop_pop_order_is_sorted(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_micros(t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some((t, _)) = q.pop() {
                proptest::prop_assert!(t >= last);
                last = t;
                count += 1;
            }
            proptest::prop_assert_eq!(count, times.len());
        }

        // Draining the queue is a stable sort by time: events pushed at
        // the same instant keep their relative insertion order even when
        // interleaved with events at other instants.
        #[test]
        fn prop_drain_is_stable_sort(times in proptest::collection::vec(0u64..16, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let drained: Vec<(SimTime, usize)> = std::iter::from_fn(|| q.pop()).collect();
            let mut expected: Vec<(SimTime, usize)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (SimTime::from_millis(t), i))
                .collect();
            // A stable sort by time alone keeps insertion order within ties.
            expected.sort_by_key(|&(t, _)| t);
            proptest::prop_assert_eq!(drained, expected);
        }

        #[test]
        fn prop_equal_times_fifo(n in 1usize..100) {
            let mut q = EventQueue::new();
            let t = SimTime::from_secs(1);
            for i in 0..n {
                q.push(t, i);
            }
            for i in 0..n {
                proptest::prop_assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }
}
