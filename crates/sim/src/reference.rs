//! The retired binary-heap event queue, kept as a correctness oracle.
//!
//! [`ReferenceEventQueue`] is the original `BinaryHeap`-backed
//! implementation that [`EventQueue`](crate::EventQueue) replaced with
//! a calendar-bucket layout. It is deliberately boring: every operation
//! leans on the standard library's heap, so its pop order is easy to
//! trust. Property tests interleave arbitrary operation scripts against
//! both queues and assert identical observable behavior (the same
//! pattern PR 5 used with `ReferencePageTable`), and `bench_queue`
//! races the two to quantify the calendar queue's speedup.
//!
//! Not used on any simulation path — oracle and benchmark baseline only.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::queue::ScheduledEvent;
use crate::time::SimTime;

/// A heap entry ordered so the earliest `(at, seq)` surfaces first from
/// the standard library's max-heap.
#[derive(Debug, Clone)]
struct HeapEntry<E>(ScheduledEvent<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // lowest-sequence) event surfaces first.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// The original heap-backed time-ordered event queue.
///
/// API-compatible with [`EventQueue`](crate::EventQueue) so oracle
/// tests and `bench_queue` can drive both through the same script.
#[derive(Debug, Clone)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    next_seq: u64,
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `at`; same-instant events fire in
    /// insertion order.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(ScheduledEvent { at, seq, event }));
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules a batch of events all firing at `at`, in iteration
    /// order.
    pub fn push_at_many<I: IntoIterator<Item = E>>(&mut self, at: SimTime, events: I) {
        let iter = events.into_iter();
        self.heap.reserve(iter.size_hint().0);
        for event in iter {
            self.push(at, event);
        }
    }

    /// Schedules `event` under an externally allocated sequence stamp
    /// (see [`EventQueue::push_stamped`](crate::EventQueue::push_stamped)).
    pub fn push_stamped(&mut self, at: SimTime, stamp: u64, event: E) {
        self.next_seq = self.next_seq.max(stamp + 1);
        self.heap.push(HeapEntry(ScheduledEvent {
            at,
            seq: stamp,
            event,
        }));
    }

    /// Batch sibling of [`ReferenceEventQueue::push_stamped`].
    pub fn push_stamped_many<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = ScheduledEvent<E>>,
    {
        let iter = events.into_iter();
        self.heap.reserve(iter.size_hint().0);
        for ev in iter {
            self.push_stamped(ev.at, ev.seq, ev.event);
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|HeapEntry(s)| (s.at, s.event))
    }

    /// Removes and returns the earliest event with its time and stamp.
    pub fn pop_scheduled(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|HeapEntry(s)| s)
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|HeapEntry(s)| s.at)
    }

    /// A reference to the earliest pending event.
    pub fn peek(&self) -> Option<&ScheduledEvent<E>> {
        self.heap.peek().map(|HeapEntry(s)| s)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_pops_in_time_then_fifo_order() {
        let mut q = ReferenceEventQueue::new();
        let t = SimTime::from_secs(1);
        q.push(SimTime::from_secs(2), 'z');
        q.push(t, 'a');
        q.push(t, 'b');
        assert_eq!(q.peek_time(), Some(t));
        assert_eq!(q.pop(), Some((t, 'a')));
        assert_eq!(q.pop(), Some((t, 'b')));
        assert_eq!(q.pop(), Some((SimTime::from_secs(2), 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn reference_stamped_pushes_merge_with_plain_pushes() {
        let mut q = ReferenceEventQueue::new();
        let t = SimTime::from_secs(1);
        q.push_stamped(t, 7, 'c');
        q.push_stamped(t, 2, 'b');
        q.push_stamped(SimTime::ZERO, 9, 'a');
        q.push(t, 'd'); // gets seq 10: after every stamped event
        assert_eq!(q.pop(), Some((SimTime::ZERO, 'a')));
        assert_eq!(q.pop(), Some((t, 'b')));
        assert_eq!(q.pop(), Some((t, 'c')));
        assert_eq!(q.pop(), Some((t, 'd')));
    }
}
