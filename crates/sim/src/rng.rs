//! Seedable randomness for deterministic experiments.
//!
//! Every stochastic decision in the reproduction flows through [`SimRng`],
//! a thin wrapper over a counter-seeded [`rand::rngs::StdRng`] that adds the
//! distributions the paper's workloads need: exponential inter-arrival
//! times, Pareto-distributed request indices (the paper drives Graph/Web
//! inputs with a Pareto distribution, §8.1) and log-normal service jitter.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random-number generator for simulation components.
///
/// # Examples
///
/// ```
/// use faasmem_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child generator; the `stream` tag keeps
    /// different subsystems (arrivals, page access, jitter, ...) decoupled
    /// so adding draws to one does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.inner.gen::<u64>();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.exponential(mean.as_micros() as f64) as u64)
    }

    /// Pareto-distributed value with scale `x_min` and shape `alpha`.
    ///
    /// The paper drives the start node of Graph and the requested HTML page
    /// of Web with a Pareto distribution (§8.1); `alpha` near 1–2 yields the
    /// heavy skew that makes a small set of pages hot.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(x_min > 0.0 && alpha > 0.0, "invalid pareto({x_min},{alpha})");
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        x_min / u.powf(1.0 / alpha)
    }

    /// Pareto-distributed index in `[0, n)`: index 0 is the most popular.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pareto_index(&mut self, n: usize, alpha: f64) -> usize {
        assert!(n > 0, "empty index space");
        let raw = self.pareto(1.0, alpha) - 1.0; // >= 0, heavy-tailed
        (raw.floor() as usize).min(n - 1)
    }

    /// Log-normal multiplicative jitter with median 1 and the given sigma
    /// (of the underlying normal). Used for service-time variation.
    pub fn lognormal_jitter(&mut self, sigma: f64) -> f64 {
        // Box-Muller on two uniforms.
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (sigma * z).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_decoupled() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d = parent1.fork(2);
        assert_ne!(c1.next_u64(), d.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() / mean < 0.05, "observed {observed}");
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut rng = SimRng::seed_from(6);
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.pareto(1.0, 1.2);
            assert!(v >= 1.0);
            max = max.max(v);
        }
        assert!(max > 50.0, "expected a heavy tail, max {max}");
    }

    #[test]
    fn pareto_index_prefers_low_indices() {
        let mut rng = SimRng::seed_from(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.pareto_index(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > 3_000);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(8);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn below_and_range_bounds() {
        let mut rng = SimRng::seed_from(10);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::seed_from(12);
        let empty: &[u8] = &[];
        assert_eq!(rng.choose(empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn lognormal_jitter_median_near_one() {
        let mut rng = SimRng::seed_from(13);
        let mut v: Vec<f64> = (0..9_999).map(|_| rng.lognormal_jitter(0.3)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 1.0).abs() < 0.07, "median {median}");
    }

    #[test]
    fn exp_duration_is_positive_scale() {
        let mut rng = SimRng::seed_from(14);
        let mean = SimDuration::from_millis(100);
        let sum: u64 = (0..5_000).map(|_| rng.exp_duration(mean).as_micros()).sum();
        let observed = sum as f64 / 5_000.0;
        assert!((observed - 100_000.0).abs() / 100_000.0 < 0.1);
    }
}
