//! Seedable randomness for deterministic experiments.
//!
//! Every stochastic decision in the reproduction flows through [`SimRng`],
//! a self-contained xoshiro256++ generator (seeded via SplitMix64) that
//! adds the distributions the paper's workloads need: exponential
//! inter-arrival times, Pareto-distributed request indices (the paper
//! drives Graph/Web inputs with a Pareto distribution, §8.1) and
//! log-normal service jitter.
//!
//! The generator is implemented in-repo rather than via the `rand` crate
//! so the workspace builds with no external dependencies, and so the
//! byte-identical-output guarantee of the experiment harness rests on
//! code this repository controls.

use crate::time::SimDuration;

/// A deterministic random-number generator for simulation components.
///
/// # Examples
///
/// ```
/// use faasmem_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// One SplitMix64 step; used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        SimRng { state }
    }

    /// Derives an independent child generator; the `stream` tag keeps
    /// different subsystems (arrivals, page access, jitter, ...) decoupled
    /// so adding draws to one does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::seed_from(base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        self.state = [n0, n1, n2, n3.rotate_left(45)];
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `(0, 1]`; the open-at-zero variant the inverse
    /// transforms below need so `ln(u)` stays finite.
    fn next_f64_open0(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire multiply-shift: unbiased enough for simulation (bias is
        // < 2^-64 per draw) and branch-free.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
        let u = self.next_f64_open0();
        -mean * u.ln()
    }

    /// Exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_micros(self.exponential(mean.as_micros() as f64) as u64)
    }

    /// Pareto-distributed value with scale `x_min` and shape `alpha`.
    ///
    /// The paper drives the start node of Graph and the requested HTML page
    /// of Web with a Pareto distribution (§8.1); `alpha` near 1–2 yields the
    /// heavy skew that makes a small set of pages hot.
    ///
    /// # Panics
    ///
    /// Panics if `x_min <= 0` or `alpha <= 0`.
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        assert!(
            x_min > 0.0 && alpha > 0.0,
            "invalid pareto({x_min},{alpha})"
        );
        let u = self.next_f64_open0();
        x_min / u.powf(1.0 / alpha)
    }

    /// Pareto-distributed index in `[0, n)`: index 0 is the most popular.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pareto_index(&mut self, n: usize, alpha: f64) -> usize {
        assert!(n > 0, "empty index space");
        let raw = self.pareto(1.0, alpha) - 1.0; // >= 0, heavy-tailed
        (raw.floor() as usize).min(n - 1)
    }

    /// Log-normal multiplicative jitter with median 1 and the given sigma
    /// (of the underlying normal). Used for service-time variation.
    pub fn lognormal_jitter(&mut self, sigma: f64) -> f64 {
        // Box-Muller on two uniforms.
        let u1 = self.next_f64_open0();
        let u2 = self.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (sigma * z).exp()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` when the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.below(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_streams_are_decoupled() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut d = parent1.fork(2);
        assert_ne!(c1.next_u64(), d.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        // SplitMix64 expansion must not hand xoshiro an all-zero state.
        let mut rng = SimRng::seed_from(0);
        let draws: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() / mean < 0.05, "observed {observed}");
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut rng = SimRng::seed_from(6);
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v = rng.pareto(1.0, 1.2);
            assert!(v >= 1.0);
            max = max.max(v);
        }
        assert!(max > 50.0, "expected a heavy tail, max {max}");
    }

    #[test]
    fn pareto_index_prefers_low_indices() {
        let mut rng = SimRng::seed_from(7);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.pareto_index(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > 3_000);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(8);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }

    #[test]
    fn below_and_range_bounds() {
        let mut rng = SimRng::seed_from(10);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
            let v = rng.range(5, 9);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = SimRng::seed_from(15);
        let mut seen = [false; 7];
        for _ in 0..2_000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = SimRng::seed_from(12);
        let empty: &[u8] = &[];
        assert_eq!(rng.choose(empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn lognormal_jitter_median_near_one() {
        let mut rng = SimRng::seed_from(13);
        let mut v: Vec<f64> = (0..9_999).map(|_| rng.lognormal_jitter(0.3)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((median - 1.0).abs() < 0.07, "median {median}");
    }

    #[test]
    fn exp_duration_is_positive_scale() {
        let mut rng = SimRng::seed_from(14);
        let mean = SimDuration::from_millis(100);
        let sum: u64 = (0..5_000).map(|_| rng.exp_duration(mean).as_micros()).sum();
        let observed = sum as f64 / 5_000.0;
        assert!((observed - 100_000.0).abs() / 100_000.0 < 0.1);
    }
}
