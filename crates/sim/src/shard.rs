//! Shard-parallel event scheduling: per-shard queues advancing inside a
//! conservative time window, with deterministic cross-shard delivery.
//!
//! The serial [`EventQueue`] is one calendar queue; this module splits
//! the pending event set across `S` per-shard queues while keeping the
//! *merged* pop order byte-identical to the serial queue. Two
//! mechanisms make that possible:
//!
//! 1. **Global stamps.** Every push draws its sequence number from one
//!    shared counter ([`ShardedEventQueue::push_from`]) instead of a
//!    per-queue counter. Stamps are allocated in push order, exactly
//!    like the serial queue's `seq`, so `(at, stamp)` is a total order
//!    identical to the serial `(at, seq)` order — the shard id never
//!    needs to break a tie.
//! 2. **Conservative windows.** A window opens at the earliest pending
//!    time and extends by a lookahead ([`ShardedEventQueue::begin_window`]).
//!    Events strictly before the window end are poppable; cross-shard
//!    sends raised meanwhile are parked in an outbox and delivered at
//!    the window barrier ([`ShardedEventQueue::flush_window`]) in `(at,
//!    stamp)` order via the stamped batch-push API. If a cross-shard
//!    edge turns out *shorter* than the lookahead promised, the window
//!    contracts to the delivery time on the spot — only events at
//!    earlier instants can still pop, so no event is ever processed
//!    ahead of a pending delivery that precedes it in `(at, stamp)`
//!    order. Correctness therefore never depends on the lookahead
//!    value; lookahead only sets how much work a window can batch.
//!
//! [`ShardMap`] is the companion partition function: a round-robin
//! assignment of entity ids (containers, nodes) to shards.

use crate::queue::{EventQueue, ScheduledEvent};
use crate::time::{SimDuration, SimTime};

/// Round-robin partition of entity ids over a fixed shard count.
///
/// The assignment is a pure function of the id, so producers on any
/// thread agree on placement without coordination, and re-partitioning
/// the same id set always yields the same shards.
///
/// # Examples
///
/// ```
/// use faasmem_sim::ShardMap;
///
/// let map = ShardMap::new(4);
/// assert_eq!(map.shard_of(6), 2);
/// let parts = map.partition(0..8);
/// assert_eq!(parts[2], vec![2, 6]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
}

impl ShardMap {
    /// A partition over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardMap { shards }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `id`.
    pub fn shard_of(&self, id: u64) -> u32 {
        (id % u64::from(self.shards)) as u32
    }

    /// Splits `ids` into per-shard lists, preserving input order within
    /// each shard. The output is a permutation of the input: every id
    /// lands in exactly one shard.
    pub fn partition<I: IntoIterator<Item = u64>>(&self, ids: I) -> Vec<Vec<u64>> {
        let mut parts = vec![Vec::new(); self.shards as usize];
        for id in ids {
            parts[self.shard_of(id) as usize].push(id);
        }
        parts
    }
}

/// `S` per-shard event queues with one global stamp counter, a
/// conservative window, and a cross-shard outbox (see the module docs
/// for the ordering argument).
#[derive(Debug)]
pub struct ShardedEventQueue<E> {
    queues: Vec<EventQueue<E>>,
    /// Cross-shard events raised inside the open window, delivered at
    /// the barrier as `(target_shard, stamped event)`.
    outbox: Vec<(u32, ScheduledEvent<E>)>,
    next_stamp: u64,
    /// Shard whose event [`ShardedEventQueue::pop_window`] last
    /// returned — the origin of any pushes its handler performs.
    current_shard: u32,
    /// Exclusive upper bound of the open window; `None` between windows.
    window_end: Option<SimTime>,
    windows: u64,
    cross_events: u64,
}

impl<E> ShardedEventQueue<E> {
    /// An empty sharded queue.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is zero.
    pub fn new(shards: u32) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedEventQueue {
            queues: (0..shards).map(|_| EventQueue::new()).collect(),
            outbox: Vec::new(),
            next_stamp: 0,
            current_shard: 0,
            window_end: None,
            windows: 0,
            cross_events: 0,
        }
    }

    /// The shard count.
    pub fn shard_count(&self) -> u32 {
        self.queues.len() as u32
    }

    /// The shard whose event the last [`ShardedEventQueue::pop_window`]
    /// returned (shard 0 before any pop — seeding runs as the control
    /// shard).
    pub fn current_shard(&self) -> u32 {
        self.current_shard
    }

    /// Windows opened so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Cross-shard events routed through the outbox so far.
    pub fn cross_events(&self) -> u64 {
        self.cross_events
    }

    /// Pre-sizes the current shard's queue for `additional` pushes.
    pub fn reserve_current(&mut self, additional: usize) {
        self.queues[self.current_shard as usize].reserve(additional);
    }

    /// Schedules `event` at `at` on `target`'s queue, stamping it from
    /// the global counter.
    ///
    /// Same-shard pushes (and any push outside an open window, i.e.
    /// during seeding) land directly on the target heap. A cross-shard
    /// push inside a window is parked in the outbox for the barrier —
    /// and if it lands *before* the window's end, the window contracts
    /// to the delivery time: every event processed so far fired at or
    /// before `at`, and remaining pops are strictly below the new end,
    /// so nothing can overtake the parked event in `(at, stamp)` order.
    pub fn push_from(&mut self, origin: u32, target: u32, at: SimTime, event: E) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        match self.window_end {
            Some(ref mut end) if origin != target => {
                if at < *end {
                    *end = at;
                }
                self.cross_events += 1;
                self.outbox.push((
                    target,
                    ScheduledEvent {
                        at,
                        seq: stamp,
                        event,
                    },
                ));
            }
            _ => self.queues[target as usize].push_stamped(at, stamp, event),
        }
    }

    /// Opens a window at the earliest pending time, extending it by
    /// `lookahead` (floored at one microsecond so the window always
    /// makes progress). Returns the window start, or `None` when no
    /// events are pending anywhere — the drain is complete.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) when the previous window was not flushed.
    pub fn begin_window(&mut self, lookahead: SimDuration) -> Option<SimTime> {
        debug_assert!(
            self.outbox.is_empty(),
            "flush_window the previous window before opening a new one"
        );
        let start = self.next_time()?;
        let step = lookahead.max(SimDuration::from_micros(1));
        self.window_end = Some(start + step);
        self.windows += 1;
        Some(start)
    }

    /// Pops the globally earliest `(at, stamp)` event among all shard
    /// heaps, provided it fires strictly before the window end. Returns
    /// `None` when the window is exhausted. Sets
    /// [`ShardedEventQueue::current_shard`] to the owning shard.
    pub fn pop_window(&mut self) -> Option<(SimTime, E)> {
        let end = self.window_end.expect("begin_window first");
        let mut best: Option<(usize, SimTime, u64)> = None;
        for (i, q) in self.queues.iter_mut().enumerate() {
            if let Some(head) = q.peek() {
                let better = match best {
                    None => true,
                    Some((_, at, seq)) => (head.at, head.seq) < (at, seq),
                };
                if better {
                    best = Some((i, head.at, head.seq));
                }
            }
        }
        let (i, at, _) = best?;
        if at >= end {
            return None;
        }
        self.current_shard = i as u32;
        let ev = self.queues[i].pop_scheduled().expect("peeked event");
        Some((ev.at, ev.event))
    }

    /// The window barrier: closes the window and delivers every parked
    /// cross-shard event onto its target queue in `(at, stamp)` order.
    ///
    /// Sorting first turns each target's deliveries into ascending
    /// same-instant runs, which the calendar queue appends onto one
    /// bucket without re-sorting — the whole flush is a group move. The
    /// outbox buffer is drained in place and kept, so a steady stream
    /// of windows allocates nothing.
    pub fn flush_window(&mut self) {
        self.window_end = None;
        if self.outbox.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.outbox);
        // Stamps are globally unique, so (at, stamp) is already total —
        // the shard id in the nominal (time, seq, shard) merge key can
        // never act as a tie-breaker.
        pending.sort_unstable_by_key(|(_, ev)| (ev.at, ev.seq));
        for (target, ev) in pending.drain(..) {
            self.queues[target as usize].push_stamped(ev.at, ev.seq, ev.event);
        }
        // Hand the (empty) buffer back so its capacity is reused.
        self.outbox = pending;
    }

    /// The earliest pending firing time across all shard queues (the
    /// outbox is empty between windows, so the queues are the whole
    /// state). `&mut self` because locating a calendar queue's head may
    /// advance its cursor (see [`EventQueue::peek_time`]).
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.queues
            .iter_mut()
            .filter_map(EventQueue::peek_time)
            .min()
    }

    /// Total pending events, heaps plus outbox.
    pub fn len(&self) -> usize {
        self.queues.iter().map(EventQueue::len).sum::<usize>() + self.outbox.len()
    }

    /// `true` when nothing is pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` while any event is pending in a heap or the outbox.
    pub fn has_pending(&self) -> bool {
        !self.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_round_robins() {
        let map = ShardMap::new(3);
        let parts = map.partition(0..7);
        assert_eq!(parts, vec![vec![0, 3, 6], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardMap::new(0);
    }

    #[test]
    fn seeding_outside_a_window_is_direct() {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(4);
        // No window open: cross-shard pushes land on the target heap.
        q.push_from(0, 3, SimTime::from_secs(1), 10);
        q.push_from(0, 1, SimTime::from_secs(2), 11);
        assert_eq!(q.cross_events(), 0);
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1)));
    }

    #[test]
    fn short_cross_shard_edge_contracts_the_window() {
        let mut q: ShardedEventQueue<&str> = ShardedEventQueue::new(2);
        q.push_from(0, 0, SimTime::from_secs(1), "a");
        q.push_from(0, 0, SimTime::from_secs(5), "later");
        // Generous lookahead: the window nominally spans [1s, 11s).
        assert_eq!(
            q.begin_window(SimDuration::from_secs(10)),
            Some(SimTime::from_secs(1))
        );
        assert_eq!(q.pop_window(), Some((SimTime::from_secs(1), "a")));
        // "a"'s handler sends cross-shard for 2s — inside the window.
        q.push_from(0, 1, SimTime::from_secs(2), "cross");
        assert_eq!(q.cross_events(), 1);
        // The window contracted to 2s: "later" (5s) must not pop before
        // the parked delivery.
        assert_eq!(q.pop_window(), None);
        q.flush_window();
        assert_eq!(
            q.begin_window(SimDuration::from_secs(10)),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(q.pop_window(), Some((SimTime::from_secs(2), "cross")));
        assert_eq!(q.current_shard(), 1);
        assert_eq!(q.pop_window(), Some((SimTime::from_secs(5), "later")));
        assert_eq!(q.pop_window(), None);
        q.flush_window();
        assert!(q.is_empty());
        assert_eq!(q.windows(), 2);
    }

    #[test]
    fn same_instant_cross_delivery_defers_to_the_next_window() {
        // A zero-delay cross-shard send shrinks the window to "now";
        // the event is delivered at the barrier and pops first thing in
        // the next window, still in global stamp order.
        let t = SimTime::from_secs(3);
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(2);
        q.push_from(0, 0, t, 0);
        q.push_from(0, 0, t, 1);
        q.begin_window(SimDuration::from_secs(1));
        assert_eq!(q.pop_window(), Some((t, 0)));
        q.push_from(0, 1, t, 2); // same-instant cross send: window → t
        assert_eq!(q.pop_window(), None, "window contracted to its start");
        q.flush_window();
        q.begin_window(SimDuration::from_secs(1));
        // Stamp order within the instant: 1 (pushed earlier) before 2.
        assert_eq!(q.pop_window(), Some((t, 1)));
        assert_eq!(q.pop_window(), Some((t, 2)));
    }

    /// Reference drive: the same seed/follow-up script against a plain
    /// serial [`EventQueue`]. Each processed event `k` may trigger one
    /// follow-up push (the `follow` script), mimicking handlers that
    /// schedule new work.
    fn serial_drain(
        seeds: &[(u64, u32)],
        follow: &[(u64, u32)],
        _shards: u32,
    ) -> Vec<(SimTime, u64, u32)> {
        let mut q: EventQueue<u32> = EventQueue::new();
        for (i, &(at, _)) in seeds.iter().enumerate() {
            q.push(SimTime::from_millis(at), i as u32);
        }
        let mut next_payload = seeds.len() as u32;
        let mut popped = Vec::new();
        let mut k = 0usize;
        while let Some(ev) = q.pop_scheduled() {
            popped.push((ev.at, ev.seq, ev.event));
            if let Some(&(delta, _)) = follow.get(k) {
                q.push(ev.at + SimDuration::from_millis(delta), next_payload);
                next_payload += 1;
            }
            k += 1;
        }
        popped
    }

    /// The same script through the sharded queue: seeds target a shard
    /// derived from their hint, follow-ups are cross- or same-shard
    /// sends from whichever shard's event is being processed.
    fn sharded_drain(
        seeds: &[(u64, u32)],
        follow: &[(u64, u32)],
        shards: u32,
        lookahead: SimDuration,
    ) -> Vec<(SimTime, u64, u32)> {
        let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(shards);
        for (i, &(at, hint)) in seeds.iter().enumerate() {
            q.push_from(0, hint % shards, SimTime::from_millis(at), i as u32);
        }
        let mut next_payload = seeds.len() as u32;
        let mut popped = Vec::new();
        let mut k = 0usize;
        while q.begin_window(lookahead).is_some() {
            while let Some((at, payload)) = q.pop_window() {
                // Reconstruct the stamp for the assertion: pops surface
                // payloads; stamps are checked via the serial mirror's
                // seq, so recompute from push order (payload == order).
                popped.push((at, u64::from(payload), payload));
                if let Some(&(delta, hint)) = follow.get(k) {
                    let origin = q.current_shard();
                    q.push_from(
                        origin,
                        hint % shards,
                        at + SimDuration::from_millis(delta),
                        next_payload,
                    );
                    next_payload += 1;
                }
                k += 1;
            }
            q.flush_window();
        }
        popped
    }

    proptest::proptest! {
        // The tentpole ordering property: for arbitrary seeds,
        // follow-up interleavings, shard counts and lookaheads, the
        // sharded window merge pops payloads in exactly the serial
        // queue's `(sim_time, seq)` total order.
        #[test]
        fn prop_window_merge_preserves_serial_total_order(
            seeds in proptest::collection::vec((0u64..50, 0u32..16), 1..40),
            follow in proptest::collection::vec((0u64..20, 0u32..16), 0..80),
            shards in 1u32..8,
            lookahead_ms in 0u64..30,
        ) {
            let serial = serial_drain(&seeds, &follow, shards);
            let sharded = sharded_drain(
                &seeds,
                &follow,
                shards,
                SimDuration::from_millis(lookahead_ms),
            );
            // Payloads are assigned in push order in both drives, and
            // stamps equal the serial seqs by construction, so the
            // full (at, payload) sequences must match element-wise.
            let a: Vec<(SimTime, u32)> = serial.iter().map(|&(at, _, p)| (at, p)).collect();
            let b: Vec<(SimTime, u32)> = sharded.iter().map(|&(at, _, p)| (at, p)).collect();
            proptest::prop_assert_eq!(a, b);
        }

        // `shards = 1` degenerates to the serial queue at the event
        // stream level: same pops, and no event ever crosses shards.
        #[test]
        fn prop_single_shard_is_the_serial_path(
            seeds in proptest::collection::vec((0u64..50, 0u32..16), 1..40),
            follow in proptest::collection::vec((0u64..20, 0u32..16), 0..80),
            lookahead_ms in 0u64..30,
        ) {
            let serial = serial_drain(&seeds, &follow, 1);
            let mut q: ShardedEventQueue<u32> = ShardedEventQueue::new(1);
            for (i, &(at, _)) in seeds.iter().enumerate() {
                q.push_from(0, 0, SimTime::from_millis(at), i as u32);
            }
            let mut next_payload = seeds.len() as u32;
            let mut popped = Vec::new();
            let mut k = 0usize;
            while q.begin_window(SimDuration::from_millis(lookahead_ms)).is_some() {
                while let Some((at, payload)) = q.pop_window() {
                    popped.push((at, payload));
                    if let Some(&(delta, _)) = follow.get(k) {
                        q.push_from(0, 0, at + SimDuration::from_millis(delta), next_payload);
                        next_payload += 1;
                    }
                    k += 1;
                }
                q.flush_window();
            }
            proptest::prop_assert_eq!(q.cross_events(), 0);
            let expect: Vec<(SimTime, u32)> = serial.iter().map(|&(at, _, p)| (at, p)).collect();
            proptest::prop_assert_eq!(popped, expect);
        }

        // Partitioning is a permutation: every id lands in exactly one
        // shard, nothing is duplicated or dropped, and placement
        // matches the pure assignment function.
        #[test]
        fn prop_partition_is_a_permutation(
            ids in proptest::collection::vec(0u64..10_000, 0..200),
            shards in 1u32..16,
        ) {
            let map = ShardMap::new(shards);
            let parts = map.partition(ids.iter().copied());
            proptest::prop_assert_eq!(parts.len(), shards as usize);
            for (shard, part) in parts.iter().enumerate() {
                for &id in part {
                    proptest::prop_assert_eq!(map.shard_of(id) as usize, shard);
                }
            }
            let mut merged: Vec<u64> = parts.into_iter().flatten().collect();
            merged.sort_unstable();
            let mut expect = ids.clone();
            expect.sort_unstable();
            proptest::prop_assert_eq!(merged, expect);
        }
    }
}
