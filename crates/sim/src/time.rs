//! Simulated time types.
//!
//! The simulator keeps time as an absolute microsecond counter
//! ([`SimTime`]) and spans between instants as [`SimDuration`]. Both are
//! transparent `u64` newtypes ([C-NEWTYPE]) so arithmetic is cheap, ordering
//! is total, and the types statically distinguish "a point in simulated
//! time" from "a length of simulated time".
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, in microseconds since the start
/// of the simulation.
///
/// # Examples
///
/// ```
/// use faasmem_sim::{SimTime, SimDuration};
///
/// let t = SimTime::from_millis(250) + SimDuration::from_millis(750);
/// assert_eq!(t, SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use faasmem_sim::SimDuration;
///
/// let d = SimDuration::from_secs(2) / 4;
/// assert_eq!(d, SimDuration::from_millis(500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000_000)
    }

    /// Creates an instant from a fractional number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Raw microsecond count since the simulation origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a span from a fractional number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative float, rounding to whole microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> SimTime {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_mins(1), SimTime::from_secs(60));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_secs(5);
        let d = SimDuration::from_millis(2_500);
        let t1 = t0 + d;
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn checked_since_detects_reversal() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_secs(1)));
    }

    #[test]
    fn float_conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t, SimTime::from_micros(1_250_000));
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-9);
        let d = SimDuration::from_secs_f64(0.0005);
        assert_eq!(d, SimDuration::from_micros(500));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2_500));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_micros(10).to_string(), "10us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }
}
