//! Sim-time telemetry for the FaaSMem reproduction.
//!
//! Two halves, matching the two things the harness could not see
//! before this crate existed:
//!
//! 1. **What happens *inside* a run.** The end-of-run aggregates and
//!    the discrete event trace (`faasmem-trace`) bracket a run but do
//!    not show how resident pages, pool occupancy, or breaker state
//!    evolve over simulated time. The [`Sampler`] fixes that: a
//!    [`SampleSpec`] (interval in sim-time plus a [`SeriesMask`] of
//!    selected series groups) is registered with the platform, which
//!    snapshots named gauges from every layer at each interval
//!    boundary into a columnar [`TimeSeries`]. Sampling is *lazy* —
//!    rows are materialised when the event loop crosses a boundary,
//!    never via injected queue events — so enabling telemetry cannot
//!    perturb the simulation, and the output is a pure function of
//!    the cell (byte-identical for any `--jobs` value).
//!
//! 2. **Where the harness spends wall time.** The [`profiler`] module
//!    provides `profile_scope!`, a thread-local span stack that is
//!    zero-cost when disabled (a global flag checked once per scope;
//!    no clock reads). Aggregated per-phase tables feed the
//!    `BENCH_<grid>.json` perf baselines diffed by `bench_compare`.
//!
//! [`rss::peak_rss_kb`] rounds out the picture with the process
//! high-water resident set, read from `/proc/self/status` on Linux.

pub mod profiler;
pub mod rss;
pub mod sampler;
pub mod series;

pub use sampler::{SampleSpec, Sampler, SeriesGroup, SeriesMask};
pub use series::TimeSeries;
