//! Self-profiling for the harness: named wall-time spans aggregated
//! into per-phase tables.
//!
//! Spans nest on a thread-local stack, so each phase accrues both
//! *total* time (including children) and *self* time (children
//! subtracted). The `profile_scope!` macro is the only intended entry
//! point:
//!
//! ```
//! faasmem_telemetry::profiler::set_enabled(true);
//! {
//!     faasmem_telemetry::profile_scope!("outer");
//!     faasmem_telemetry::profile_scope!("inner");
//! }
//! faasmem_telemetry::profiler::set_enabled(false);
//! let report = faasmem_telemetry::profiler::take_report();
//! assert_eq!(report.len(), 2);
//! ```
//!
//! When profiling is disabled (the default) a scope is one relaxed
//! atomic load — no clock read, no allocation, no thread-local
//! access. Worker threads must call [`flush_thread`] before exiting
//! so their local aggregates reach the global table; [`take_report`]
//! flushes the calling thread implicitly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

static GLOBAL: Mutex<BTreeMap<&'static str, PhaseStat>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Open spans on this thread: (accumulated child seconds).
    static STACK: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    static LOCAL: RefCell<BTreeMap<&'static str, PhaseStat>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Aggregated timing for one named phase.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseStat {
    /// How many spans completed under this name.
    pub calls: u64,
    /// Wall seconds including nested child spans.
    pub total_secs: f64,
    /// Wall seconds with child-span time subtracted.
    pub self_secs: f64,
}

impl PhaseStat {
    fn merge(&mut self, other: PhaseStat) {
        self.calls += other.calls;
        self.total_secs += other.total_secs;
        self.self_secs += other.self_secs;
    }
}

/// Turns span recording on or off process-wide. Spans opened while
/// disabled record nothing even if profiling is enabled before they
/// close.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether spans are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII guard for one span. Construct via `profile_scope!`, not
/// directly.
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a span. Prefer the `profile_scope!` macro, which binds the
/// guard to scope exit.
pub fn enter(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { name, start: None };
    }
    STACK.with(|stack| stack.borrow_mut().push(0.0));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let total = start.elapsed().as_secs_f64();
        let child_secs = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let child_secs = stack.pop().unwrap_or(0.0);
            // Charge this span's full duration to the parent, if any.
            if let Some(parent) = stack.last_mut() {
                *parent += total;
            }
            child_secs
        });
        let stat = PhaseStat {
            calls: 1,
            total_secs: total,
            self_secs: (total - child_secs).max(0.0),
        };
        LOCAL.with(|local| local.borrow_mut().entry(self.name).or_default().merge(stat));
    }
}

/// Merges this thread's aggregates into the global table. Call from
/// each worker thread before it exits.
pub fn flush_thread() {
    let drained: Vec<(&'static str, PhaseStat)> = LOCAL.with(|local| {
        std::mem::take(&mut *local.borrow_mut())
            .into_iter()
            .collect()
    });
    if drained.is_empty() {
        return;
    }
    let mut global = GLOBAL.lock().expect("profiler mutex poisoned");
    for (name, stat) in drained {
        global.entry(name).or_default().merge(stat);
    }
}

/// Flushes the calling thread, then drains and returns the global
/// per-phase table sorted by phase name.
pub fn take_report() -> Vec<(&'static str, PhaseStat)> {
    flush_thread();
    let mut global = GLOBAL.lock().expect("profiler mutex poisoned");
    std::mem::take(&mut *global).into_iter().collect()
}

/// Times the enclosing scope under `name` when profiling is enabled.
/// Zero-cost (one atomic load) when disabled.
#[macro_export]
macro_rules! profile_scope {
    ($name:literal) => {
        let _faasmem_profile_guard = $crate::profiler::enter($name);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // A single test exercises the whole lifecycle: the profiler is
    // process-global state, and parallel test threads toggling
    // `set_enabled` would race each other.
    #[test]
    fn spans_nest_and_aggregate() {
        // Disabled spans record nothing.
        {
            crate::profile_scope!("never");
        }
        assert!(take_report().iter().all(|(name, _)| *name != "never"));

        set_enabled(true);
        for _ in 0..3 {
            crate::profile_scope!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                crate::profile_scope!("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        // A worker thread contributes via flush_thread.
        std::thread::spawn(|| {
            {
                crate::profile_scope!("worker");
            }
            flush_thread();
        })
        .join()
        .unwrap();
        set_enabled(false);

        let report = take_report();
        let get = |name: &str| {
            report
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| panic!("missing phase {name}: {report:?}"))
        };
        let outer = get("outer");
        let inner = get("inner");
        assert_eq!(outer.calls, 3);
        assert_eq!(inner.calls, 3);
        // Outer includes inner in total, excludes it in self time.
        assert!(outer.total_secs >= inner.total_secs);
        assert!(outer.self_secs <= outer.total_secs);
        assert!(inner.self_secs > 0.0);
        assert_eq!(get("worker").calls, 1);
        // Report names are sorted.
        let names: Vec<_> = report.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);

        // Drained: a second take sees nothing.
        assert!(take_report().is_empty());
    }
}
