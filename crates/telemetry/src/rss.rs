//! Process resident-set probes.
//!
//! Linux-only (`/proc/self/status`); every probe returns `None` on
//! other platforms so callers can export an honest `null` instead of
//! a fake zero.

/// Peak resident set size of this process in KiB (`VmHWM`), or `None`
/// when the platform does not expose it. The kernel value is a
/// process-wide high-water mark: it never decreases, so per-cell
/// readings in a multi-cell run are "peak so far", not per-cell
/// footprints.
pub fn peak_rss_kb() -> Option<u64> {
    read_status_kb("VmHWM:")
}

/// Current resident set size in KiB (`VmRSS`), or `None` when
/// unavailable.
pub fn current_rss_kb() -> Option<u64> {
    read_status_kb("VmRSS:")
}

#[cfg(target_os = "linux")]
fn read_status_kb(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&status, field)
}

#[cfg(not(target_os = "linux"))]
fn read_status_kb(_field: &str) -> Option<u64> {
    None
}

/// Parses a `Vm*:   12345 kB` line out of `/proc/self/status` text.
#[allow(dead_code)] // only dead off-Linux
fn parse_status_kb(status: &str, field: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_field() {
        let status = "Name:\tcargo\nVmRSS:\t  1234 kB\nVmHWM:\t  5678 kB\n";
        assert_eq!(parse_status_kb(status, "VmRSS:"), Some(1234));
        assert_eq!(parse_status_kb(status, "VmHWM:"), Some(5678));
        assert_eq!(parse_status_kb(status, "VmSwap:"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_positive_peak() {
        let peak = peak_rss_kb().expect("VmHWM present on Linux");
        assert!(peak > 0);
        assert!(peak >= current_rss_kb().unwrap_or(0));
    }
}
