//! Deterministic periodic sampling of platform gauges.
//!
//! A [`SampleSpec`] names an interval (in sim-time) and a set of
//! series groups; the platform owns the gauge values and calls
//! [`Sampler::record_due_rows`] after every event it processes. The
//! sampler materialises one row per interval boundary crossed since
//! the last event — so rows land exactly on `k * interval` ticks, but
//! no event is ever injected into the simulation queue. Between
//! events the platform state is constant (it is a discrete-event
//! simulation), so the value observed "late" at the next event equals
//! the value at the boundary; gauges that decay continuously with
//! time (link utilisation, backlogs) are evaluated *at* the boundary
//! timestamp by the platform's row closure.
//!
//! The handle is `Rc`-based and clonable, mirroring
//! [`faasmem_trace::Tracer`]: a disabled sampler is a `None` and costs
//! one branch per event.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::str::FromStr;

use faasmem_sim::time::{SimDuration, SimTime};

use crate::series::TimeSeries;

/// A family of series, switchable as a unit from `--series-select`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesGroup {
    /// Container lifecycle: counts per stage, warm/semi-warm split,
    /// keep-alive queue depth (`faas.*`).
    Faas,
    /// Page-table occupancy: resident/offloaded pages and bytes,
    /// generation-age histogram (`mem.*`).
    Mem,
    /// Remote-pool health: link busy fractions, backlogs, governor
    /// token level, breaker state (`pool.*`).
    Pool,
    /// Metrics-registry counter deltas per interval (`registry.*`).
    Registry,
}

impl SeriesGroup {
    fn bit(self) -> u8 {
        match self {
            SeriesGroup::Faas => 1 << 0,
            SeriesGroup::Mem => 1 << 1,
            SeriesGroup::Pool => 1 << 2,
            SeriesGroup::Registry => 1 << 3,
        }
    }
}

impl FromStr for SeriesGroup {
    type Err = String;

    fn from_str(s: &str) -> Result<SeriesGroup, String> {
        match s {
            "faas" => Ok(SeriesGroup::Faas),
            "mem" => Ok(SeriesGroup::Mem),
            "pool" => Ok(SeriesGroup::Pool),
            "registry" => Ok(SeriesGroup::Registry),
            other => Err(format!(
                "unknown series group {other:?} (expected faas, mem, pool or registry)"
            )),
        }
    }
}

/// Bit-set of enabled [`SeriesGroup`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesMask(u8);

impl SeriesMask {
    /// Every group enabled (the default for `--series`).
    pub const ALL: SeriesMask = SeriesMask(0b1111);
    /// No group enabled.
    pub const NONE: SeriesMask = SeriesMask(0);

    /// A mask with exactly one group enabled.
    pub fn only(group: SeriesGroup) -> SeriesMask {
        SeriesMask(group.bit())
    }

    /// This mask with `group` also enabled.
    pub fn with(self, group: SeriesGroup) -> SeriesMask {
        SeriesMask(self.0 | group.bit())
    }

    /// Whether `group` is enabled.
    pub fn contains(self, group: SeriesGroup) -> bool {
        self.0 & group.bit() != 0
    }

    /// Parses a comma-separated group list (`"faas,pool"`). Empty
    /// segments are ignored; an unknown name is an error.
    pub fn parse_list(list: &str) -> Result<SeriesMask, String> {
        let mut mask = SeriesMask::NONE;
        for part in list.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            mask = mask.with(part.parse::<SeriesGroup>()?);
        }
        Ok(mask)
    }
}

impl Default for SeriesMask {
    fn default() -> SeriesMask {
        SeriesMask::ALL
    }
}

/// What to sample: how often (in sim-time) and which groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSpec {
    /// Sampling period. Rows land on multiples of this tick.
    pub interval: SimDuration,
    /// Which series groups to record.
    pub select: SeriesMask,
}

impl SampleSpec {
    /// All groups at the given interval.
    pub fn every(interval: SimDuration) -> SampleSpec {
        SampleSpec {
            interval,
            select: SeriesMask::ALL,
        }
    }

    /// Validation problems, if any (used by the harness at startup).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.interval.is_zero() {
            problems.push("sample spec: interval must be positive".into());
        }
        if self.select == SeriesMask::NONE {
            problems.push("sample spec: no series groups selected".into());
        }
        problems
    }
}

struct SamplerInner {
    spec: SampleSpec,
    series: TimeSeries,
    /// Next interval boundary not yet recorded. Starts at ZERO so
    /// every run opens with a baseline row at t=0.
    next_due: SimTime,
    /// Previous cumulative values for delta-valued series.
    last_counters: BTreeMap<String, f64>,
}

/// Clonable handle to a per-cell sampling session. A disabled sampler
/// (`Sampler::disabled()`) is a `None` inside and costs one branch
/// per event in the platform loop.
#[derive(Clone, Default)]
pub struct Sampler {
    inner: Option<Rc<RefCell<SamplerInner>>>,
}

impl Sampler {
    /// A sampler that records nothing.
    pub fn disabled() -> Sampler {
        Sampler { inner: None }
    }

    /// A sampler recording per `spec`.
    pub fn recording(spec: SampleSpec) -> Sampler {
        Sampler {
            inner: Some(Rc::new(RefCell::new(SamplerInner {
                spec,
                series: TimeSeries::new(),
                next_due: SimTime::ZERO,
                last_counters: BTreeMap::new(),
            }))),
        }
    }

    /// Whether any recording will happen.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `group` is selected. Always false when disabled.
    pub fn wants(&self, group: SeriesGroup) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.borrow().spec.select.contains(group))
    }

    /// The configured spec, if enabled.
    pub fn spec(&self) -> Option<SampleSpec> {
        self.inner.as_ref().map(|inner| inner.borrow().spec)
    }

    /// Records one row per interval boundary in `(last recorded, now]`
    /// — none if no boundary was crossed. `row` is called once per
    /// boundary with the exact boundary timestamp and must return the
    /// gauge values as of that instant (for a discrete-event sim,
    /// state gauges are constant since the previous event; only
    /// time-decaying gauges need the timestamp).
    pub fn record_due_rows<F>(&self, now: SimTime, mut row: F)
    where
        F: FnMut(SimTime) -> Vec<(&'static str, f64)>,
    {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        loop {
            // The borrow is released around the `row` callback so it
            // may call back into this sampler (e.g. `counter_delta`).
            let due = {
                let inner = inner.borrow();
                if inner.next_due > now {
                    return;
                }
                inner.next_due
            };
            let values = row(due);
            let mut inner = inner.borrow_mut();
            inner.series.push_row(due.as_micros(), values);
            let interval = inner.spec.interval;
            debug_assert!(!interval.is_zero(), "validated at registration");
            inner.next_due = due.saturating_add(interval);
            if inner.next_due == due {
                return; // interval of zero despite validation: refuse to spin
            }
        }
    }

    /// Converts a cumulative counter reading into the delta since the
    /// previous call for `name` (the first call yields the full
    /// value). Lets the platform report monotone registry counters as
    /// per-interval rates.
    pub fn counter_delta(&self, name: &str, cumulative: f64) -> f64 {
        let Some(inner) = self.inner.as_ref() else {
            return 0.0;
        };
        let mut inner = inner.borrow_mut();
        let prev = inner
            .last_counters
            .insert(name.to_string(), cumulative)
            .unwrap_or(0.0);
        cumulative - prev
    }

    /// Drains the recorded series out of the handle. Plain data only;
    /// safe to send across threads.
    pub fn take_series(&self) -> TimeSeries {
        match self.inner.as_ref() {
            Some(inner) => inner.borrow_mut().series.take(),
            None => TimeSeries::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_secs(secs: u64) -> SampleSpec {
        SampleSpec::every(SimDuration::from_secs(secs))
    }

    #[test]
    fn disabled_sampler_records_nothing() {
        let s = Sampler::disabled();
        s.record_due_rows(SimTime::from_secs(100), |_| vec![("x", 1.0)]);
        assert!(!s.is_enabled());
        assert!(s.take_series().is_empty());
    }

    #[test]
    fn rows_land_on_interval_boundaries_only() {
        let s = Sampler::recording(spec_secs(1));
        // Events at 0.4s, 2.5s: boundaries 0s (baseline), 1s, 2s.
        s.record_due_rows(SimTime::from_millis(400), |t| vec![("t", t.as_secs_f64())]);
        s.record_due_rows(SimTime::from_millis(2_500), |t| {
            vec![("t", t.as_secs_f64())]
        });
        let ts = s.take_series();
        assert_eq!(ts.ticks(), [0, 1_000_000, 2_000_000]);
        assert_eq!(ts.column("t").unwrap(), [0.0, 1.0, 2.0]);
    }

    #[test]
    fn boundary_exactly_at_event_time_is_recorded_once() {
        let s = Sampler::recording(spec_secs(1));
        s.record_due_rows(SimTime::from_secs(1), |_| vec![("x", 1.0)]);
        s.record_due_rows(SimTime::from_secs(1), |_| vec![("x", 2.0)]);
        let ts = s.take_series();
        // t=0 and t=1s from the first call; the second call sees no
        // new boundary.
        assert_eq!(ts.ticks(), [0, 1_000_000]);
    }

    #[test]
    fn counter_delta_reports_per_interval_rate() {
        let s = Sampler::recording(spec_secs(1));
        assert_eq!(s.counter_delta("req", 5.0), 5.0);
        assert_eq!(s.counter_delta("req", 7.0), 2.0);
        assert_eq!(s.counter_delta("req", 7.0), 0.0);
    }

    #[test]
    fn mask_parse_list_roundtrip() {
        let mask = SeriesMask::parse_list("faas, pool,").unwrap();
        assert!(mask.contains(SeriesGroup::Faas));
        assert!(mask.contains(SeriesGroup::Pool));
        assert!(!mask.contains(SeriesGroup::Mem));
        assert!(SeriesMask::parse_list("bogus").is_err());
        assert_eq!(SeriesMask::parse_list("").unwrap(), SeriesMask::NONE);
    }

    #[test]
    fn zero_interval_spec_fails_validation() {
        let spec = SampleSpec::every(SimDuration::ZERO);
        assert!(!spec.validate().is_empty());
        let none = SampleSpec {
            interval: SimDuration::from_secs(1),
            select: SeriesMask::NONE,
        };
        assert!(!none.validate().is_empty());
    }
}
