//! Columnar (struct-of-arrays) time-series storage.
//!
//! A [`TimeSeries`] holds one shared tick axis (sim-time microseconds)
//! and any number of named `f64` columns. The structural invariant —
//! every column is exactly as long as the tick axis — is maintained by
//! construction: a column first seen mid-run is backfilled with NaN
//! for the rows it missed, and columns absent from a row get NaN for
//! that row. NaN serialises as JSON `null`, so gaps survive export.

use faasmem_trace::json::JsonValue;

/// One named column of samples.
#[derive(Debug, Clone, PartialEq)]
struct Column {
    name: String,
    values: Vec<f64>,
}

/// A rectangular, columnar time-series: one tick axis, N named f64
/// columns, all the same length. Columns are kept sorted by name so
/// serialisation order never depends on insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    ticks: Vec<u64>,
    columns: Vec<Column>,
}

impl TimeSeries {
    /// An empty series with no ticks and no columns.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Number of rows (ticks) recorded.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// The tick axis, in sim-time microseconds.
    pub fn ticks(&self) -> &[u64] {
        &self.ticks
    }

    /// Column names, in the (sorted) serialisation order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|c| c.name.as_str())
    }

    /// The samples of one column, if it exists.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .binary_search_by(|c| c.name.as_str().cmp(name))
            .ok()
            .map(|i| self.columns[i].values.as_slice())
    }

    /// Whether every column is exactly as long as the tick axis. Held
    /// by construction; exposed so property tests can state it.
    pub fn is_rectangular(&self) -> bool {
        self.columns
            .iter()
            .all(|c| c.values.len() == self.ticks.len())
    }

    /// Appends one row at tick `t_us`. Values are `(series name,
    /// sample)` pairs; a name not seen before creates a new column
    /// backfilled with NaN, and existing columns missing from `values`
    /// receive NaN for this row. Duplicate names within one row keep
    /// the last value.
    pub fn push_row<'a>(&mut self, t_us: u64, values: impl IntoIterator<Item = (&'a str, f64)>) {
        let backfill = self.ticks.len();
        self.ticks.push(t_us);
        for (name, v) in values {
            let idx = match self.columns.binary_search_by(|c| c.name.as_str().cmp(name)) {
                Ok(i) => i,
                Err(i) => {
                    self.columns.insert(
                        i,
                        Column {
                            name: name.to_string(),
                            values: vec![f64::NAN; backfill],
                        },
                    );
                    i
                }
            };
            let col = &mut self.columns[idx].values;
            if col.len() == self.ticks.len() {
                // Duplicate name within this row: last value wins.
                *col.last_mut().expect("non-empty column") = v;
            } else {
                col.push(v);
            }
        }
        for col in &mut self.columns {
            if col.values.len() < self.ticks.len() {
                col.values.push(f64::NAN);
            }
        }
    }

    /// Takes the recorded data out, leaving this series empty. Plain
    /// data only — safe to move across threads after the `Rc`-held
    /// recorder is done with it.
    pub fn take(&mut self) -> TimeSeries {
        std::mem::take(self)
    }

    /// Serialises to `{"t_us": [...], "series": {name: [...]}}`. NaN
    /// samples (structural gaps) become JSON `null`.
    pub fn to_json(&self) -> JsonValue {
        let mut doc = JsonValue::obj();
        doc.push(
            "t_us",
            JsonValue::Arr(
                self.ticks
                    .iter()
                    .map(|&t| JsonValue::Num(t as f64))
                    .collect(),
            ),
        );
        let mut series = JsonValue::obj();
        for col in &self.columns {
            series.push(
                &col.name,
                JsonValue::Arr(col.values.iter().map(|&v| JsonValue::Num(v)).collect()),
            );
        }
        doc.push("series", series);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_keeps_columns_rectangular() {
        let mut ts = TimeSeries::new();
        ts.push_row(0, [("a", 1.0)]);
        ts.push_row(10, [("a", 2.0), ("b", 3.0)]);
        ts.push_row(20, [("b", 4.0)]);
        assert!(ts.is_rectangular());
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.column("a").unwrap()[1], 2.0);
        assert!(ts.column("a").unwrap()[2].is_nan());
        // Column "b" was born on row 1: row 0 is a NaN backfill.
        assert!(ts.column("b").unwrap()[0].is_nan());
        assert_eq!(ts.column("b").unwrap()[2], 4.0);
    }

    #[test]
    fn columns_serialize_sorted_regardless_of_insertion_order() {
        let mut ts = TimeSeries::new();
        ts.push_row(0, [("zeta", 1.0), ("alpha", 2.0), ("mid", 3.0)]);
        let names: Vec<&str> = ts.column_names().collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
        let json = ts.to_json().to_compact();
        let a = json.find("alpha").unwrap();
        let m = json.find("mid").unwrap();
        let z = json.find("zeta").unwrap();
        assert!(a < m && m < z, "{json}");
    }

    #[test]
    fn duplicate_name_in_row_keeps_last_value() {
        let mut ts = TimeSeries::new();
        ts.push_row(0, [("a", 1.0), ("a", 9.0)]);
        assert!(ts.is_rectangular());
        assert_eq!(ts.column("a").unwrap(), [9.0]);
    }

    #[test]
    fn nan_gaps_export_as_null() {
        let mut ts = TimeSeries::new();
        ts.push_row(0, [("a", 1.0)]);
        ts.push_row(5, [("b", 2.0)]);
        let json = ts.to_json().to_compact();
        assert!(json.contains("[1,null]"), "{json}");
        assert!(json.contains("[null,2]"), "{json}");
    }

    // Under any interleaving of row pushes (with arbitrary column
    // subsets per row) and flushes, every live snapshot stays
    // rectangular: all columns exactly as long as the tick axis.
    proptest::proptest! {
        #[test]
        fn prop_columns_stay_equal_length_under_interleaved_sample_flush(
            ops in proptest::collection::vec((0u8..5, 0u8..16), 0..60),
        ) {
            const NAMES: [&str; 4] = ["c0", "c1", "c2", "c3"];
            let mut ts = TimeSeries::new();
            let mut tick = 0u64;
            for (op, subset) in ops {
                if op == 4 {
                    let taken = ts.take();
                    proptest::prop_assert!(taken.is_rectangular());
                    proptest::prop_assert!(ts.is_empty());
                    tick = 0;
                } else {
                    let row = NAMES
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| subset & (1 << i) != 0)
                        .map(|(i, name)| (*name, i as f64));
                    ts.push_row(tick, row);
                    tick += 1;
                }
                proptest::prop_assert!(ts.is_rectangular());
                for name in NAMES {
                    if let Some(col) = ts.column(name) {
                        proptest::prop_assert_eq!(col.len(), ts.len());
                    }
                }
            }
        }
    }

    #[test]
    fn take_leaves_empty_series() {
        let mut ts = TimeSeries::new();
        ts.push_row(0, [("a", 1.0)]);
        let taken = ts.take();
        assert_eq!(taken.len(), 1);
        assert!(ts.is_empty());
        assert_eq!(ts.column_names().count(), 0);
    }
}
