//! Chrome trace-event ("Trace Event Format") export, loadable in
//! Perfetto / `chrome://tracing`.
//!
//! Each grid cell becomes one process (`pid` = cell index); each
//! container becomes one thread (`tid` = container id + 1, with
//! `tid` 0 reserved for node-level events such as pool transfers not
//! attributable to a container and breaker transitions). Container
//! lifecycle events are rendered as nested duration spans
//! (`launch` → `init` → `exec`/`keep-alive`) via `B`/`E` pairs; all
//! other events become thread-scoped instants (`ph: "i"`, `s: "t"`)
//! carrying their payload in `args`. Timestamps are simulated
//! microseconds, which is exactly the unit the format expects.

use crate::event::{EventKind, TraceEvent};
use crate::json::JsonValue;
use std::collections::BTreeMap;

/// One process worth of events: a grid cell and its trace slice.
#[derive(Debug, Clone)]
pub struct ChromeGroup {
    /// Process id (grid cell index).
    pub pid: u64,
    /// Process display name (the cell label).
    pub name: String,
    /// The cell's events in `(sim_time, seq)` order.
    pub events: Vec<TraceEvent>,
}

fn base_event(name: &str, cat: &str, ph: &str, ts: u64, pid: u64, tid: u64) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("name", JsonValue::Str(name.into()));
    doc.push("cat", JsonValue::Str(cat.into()));
    doc.push("ph", JsonValue::Str(ph.into()));
    doc.push("ts", JsonValue::Num(ts as f64));
    doc.push("pid", JsonValue::Num(pid as f64));
    doc.push("tid", JsonValue::Num(tid as f64));
    doc
}

fn metadata(name: &str, pid: u64, tid: Option<u64>, label: &str) -> JsonValue {
    let mut doc = JsonValue::obj();
    doc.push("name", JsonValue::Str(name.into()));
    doc.push("ph", JsonValue::Str("M".into()));
    doc.push("pid", JsonValue::Num(pid as f64));
    if let Some(tid) = tid {
        doc.push("tid", JsonValue::Num(tid as f64));
    }
    let mut args = JsonValue::obj();
    args.push("name", JsonValue::Str(label.into()));
    doc.push("args", args);
    doc
}

fn tid_of(event: &TraceEvent) -> u64 {
    event.container.map_or(0, |c| c + 1)
}

/// Span phases opened by lifecycle events, innermost-last per thread.
type SpanStacks = BTreeMap<u64, Vec<&'static str>>;

fn close_span(
    out: &mut Vec<JsonValue>,
    stacks: &mut SpanStacks,
    cat: &str,
    ts: u64,
    pid: u64,
    tid: u64,
) {
    if let Some(name) = stacks.get_mut(&tid).and_then(Vec::pop) {
        out.push(base_event(name, cat, "E", ts, pid, tid));
    }
}

fn open_span(
    out: &mut Vec<JsonValue>,
    stacks: &mut SpanStacks,
    name: &'static str,
    cat: &str,
    ts: u64,
    pid: u64,
    tid: u64,
) {
    stacks.entry(tid).or_default().push(name);
    out.push(base_event(name, cat, "B", ts, pid, tid));
}

/// Renders groups into a complete Chrome trace document:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
pub fn chrome_trace(groups: &[ChromeGroup]) -> JsonValue {
    let mut out: Vec<JsonValue> = Vec::new();
    for group in groups {
        out.push(metadata("process_name", group.pid, None, &group.name));
        // Deterministic thread metadata: collect tids first.
        let mut tids: BTreeMap<u64, String> = BTreeMap::new();
        for event in &group.events {
            let tid = tid_of(event);
            tids.entry(tid).or_insert_with(|| {
                if tid == 0 {
                    "node".to_string()
                } else {
                    format!("container {}", tid - 1)
                }
            });
        }
        for (tid, label) in &tids {
            out.push(metadata("thread_name", group.pid, Some(*tid), label));
        }

        let mut stacks: SpanStacks = BTreeMap::new();
        let mut max_ts = 0u64;
        for event in &group.events {
            let ts = event.time.as_micros();
            max_ts = max_ts.max(ts);
            let tid = tid_of(event);
            let cat = event.kind.layer().name();
            match &event.kind {
                EventKind::ContainerLaunch { .. } => {
                    open_span(&mut out, &mut stacks, "launch", cat, ts, group.pid, tid);
                }
                EventKind::RuntimeLoaded => {
                    close_span(&mut out, &mut stacks, cat, ts, group.pid, tid);
                    open_span(&mut out, &mut stacks, "init", cat, ts, group.pid, tid);
                }
                EventKind::InitDone => {
                    close_span(&mut out, &mut stacks, cat, ts, group.pid, tid);
                }
                EventKind::ExecStart { .. } => {
                    // A warm container sits in its keep-alive span.
                    if stacks.get(&tid).and_then(|s| s.last()) == Some(&"keep-alive") {
                        close_span(&mut out, &mut stacks, cat, ts, group.pid, tid);
                    }
                    open_span(&mut out, &mut stacks, "exec", cat, ts, group.pid, tid);
                }
                EventKind::ExecEnd { .. } => {
                    close_span(&mut out, &mut stacks, cat, ts, group.pid, tid);
                }
                EventKind::KeepAliveEnter => {
                    open_span(&mut out, &mut stacks, "keep-alive", cat, ts, group.pid, tid);
                }
                EventKind::ContainerRetire { .. } => {
                    while stacks.get(&tid).is_some_and(|s| !s.is_empty()) {
                        close_span(&mut out, &mut stacks, cat, ts, group.pid, tid);
                    }
                    out.push(instant(event, ts, group.pid, tid, cat));
                }
                _ => out.push(instant(event, ts, group.pid, tid, cat)),
            }
        }
        // Close dangling spans (containers still alive at cell end) so
        // every B has a matching E.
        for (tid, stack) in std::mem::take(&mut stacks) {
            for name in stack.into_iter().rev() {
                out.push(base_event(name, "container", "E", max_ts, group.pid, tid));
            }
        }
    }

    let mut doc = JsonValue::obj();
    doc.push("traceEvents", JsonValue::Arr(out));
    doc.push("displayTimeUnit", JsonValue::Str("ms".into()));
    doc
}

fn instant(event: &TraceEvent, ts: u64, pid: u64, tid: u64, cat: &str) -> JsonValue {
    let mut doc = base_event(event.kind.name(), cat, "i", ts, pid, tid);
    doc.push("s", JsonValue::Str("t".into()));
    let mut args = JsonValue::obj();
    if let Some(req) = event.request {
        args.push("req", JsonValue::Num(req as f64));
    }
    event.kind.push_payload(&mut args);
    doc.push("args", args);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_sim::SimTime;

    fn ev(us: u64, seq: u64, ctr: Option<u64>, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_micros(us),
            seq,
            container: ctr,
            request: None,
            kind,
        }
    }

    fn field<'a>(doc: &'a JsonValue, key: &str) -> &'a JsonValue {
        doc.get(key).expect(key)
    }

    #[test]
    fn spans_pair_and_instants_carry_payload() {
        let group = ChromeGroup {
            pid: 0,
            name: "cell".into(),
            events: vec![
                ev(0, 0, Some(0), EventKind::ContainerLaunch { function: 1 }),
                ev(100, 1, Some(0), EventKind::RuntimeLoaded),
                ev(200, 2, Some(0), EventKind::InitDone),
                ev(200, 3, Some(0), EventKind::ExecStart { cold: true }),
                ev(
                    250,
                    4,
                    None,
                    EventKind::PoolPageOut {
                        bytes: 4096,
                        stall_us: 7,
                        queued_us: 0,
                    },
                ),
                ev(
                    300,
                    5,
                    Some(0),
                    EventKind::ExecEnd {
                        latency_us: 300,
                        faults: 0,
                    },
                ),
                ev(300, 6, Some(0), EventKind::KeepAliveEnter),
                ev(900, 7, Some(0), EventKind::ContainerRetire { requests: 1 }),
            ],
        };
        let doc = chrome_trace(&[group]);
        let events = field(&doc, "traceEvents").as_arr().unwrap();

        // Every event has the mandatory fields with valid phases.
        let mut depth_by_tid: BTreeMap<u64, i64> = BTreeMap::new();
        for e in events {
            let ph = field(e, "ph").as_str().unwrap();
            assert!(matches!(ph, "B" | "E" | "i" | "M"), "bad ph {ph}");
            assert!(e.get("pid").and_then(JsonValue::as_num).is_some());
            if ph != "M" {
                assert!(e.get("ts").and_then(JsonValue::as_num).is_some());
                assert!(e.get("tid").and_then(JsonValue::as_num).is_some());
            }
            if ph == "B" || ph == "E" {
                let tid = field(e, "tid").as_num().unwrap() as u64;
                let d = depth_by_tid.entry(tid).or_insert(0);
                *d += if ph == "B" { 1 } else { -1 };
                assert!(*d >= 0, "E without B on tid {tid}");
            }
        }
        // All spans closed by retire.
        assert!(depth_by_tid.values().all(|&d| d == 0));

        // The pool transfer landed on the node thread as an instant.
        let pool = events
            .iter()
            .find(|e| field(e, "name").as_str() == Some("pool_page_out"))
            .unwrap();
        assert_eq!(field(pool, "tid").as_num(), Some(0.0));
        assert_eq!(field(pool, "s").as_str(), Some("t"));
        assert_eq!(
            field(pool, "args").get("bytes").and_then(JsonValue::as_num),
            Some(4096.0)
        );
    }

    #[test]
    fn dangling_spans_close_at_group_end() {
        let group = ChromeGroup {
            pid: 2,
            name: "cell".into(),
            events: vec![
                ev(0, 0, Some(5), EventKind::ContainerLaunch { function: 0 }),
                ev(10, 1, Some(5), EventKind::RuntimeLoaded),
                ev(500, 2, None, EventKind::BreakerOpen),
            ],
        };
        let doc = chrome_trace(&[group]);
        let events = field(&doc, "traceEvents").as_arr().unwrap();
        let begins = events
            .iter()
            .filter(|e| field(e, "ph").as_str() == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| field(e, "ph").as_str() == Some("E"))
            .count();
        assert_eq!(begins, ends);
        // The synthesized E lands at the group's max timestamp.
        let last_end = events
            .iter()
            .rfind(|e| field(e, "ph").as_str() == Some("E"))
            .unwrap();
        assert_eq!(field(last_end, "ts").as_num(), Some(500.0));
    }

    #[test]
    fn thread_metadata_is_deterministic() {
        let group = ChromeGroup {
            pid: 1,
            name: "c".into(),
            events: vec![
                ev(0, 0, Some(3), EventKind::RuntimeLoaded),
                ev(0, 1, None, EventKind::BreakerOpen),
                ev(0, 2, Some(1), EventKind::RuntimeLoaded),
            ],
        };
        let doc = chrome_trace(&[group]);
        let names: Vec<String> = field(&doc, "traceEvents")
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| field(e, "name").as_str() == Some("thread_name"))
            .map(|e| {
                field(e, "args")
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["node", "container 1", "container 3"]);
    }
}
