//! The typed event model: layers, filter masks, event kinds and the
//! stamped [`TraceEvent`] record.
//!
//! Every event carries a `(sim_time, seq)` pair assigned by the
//! [`Tracer`](crate::Tracer) at emission. `seq` is strictly monotone
//! within one tracer, so the pair is a total order over the events of a
//! cell regardless of how many emitters interleave. Events never carry
//! wall-clock time — that is the core determinism rule (wall-clock
//! lives only in `.timing.json` files, which are never byte-compared).

use crate::json::JsonValue;
use faasmem_sim::SimTime;

/// The subsystem an event originates from. Used for `--trace-filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLayer {
    /// Harness cell boundaries (grid cell start/end).
    Harness,
    /// Container lifecycle and request execution (`faas::platform`).
    Container,
    /// Page-table events: scans, generations, offload, page-in (`mem`).
    Memory,
    /// Remote-pool transfers, faults, breaker transitions (`pool`).
    Pool,
}

impl TraceLayer {
    /// All layers, in a fixed order.
    pub const ALL: [TraceLayer; 4] = [
        TraceLayer::Harness,
        TraceLayer::Container,
        TraceLayer::Memory,
        TraceLayer::Pool,
    ];

    /// The stable lowercase name used in JSONL output and CLI filters.
    pub fn name(self) -> &'static str {
        match self {
            TraceLayer::Harness => "harness",
            TraceLayer::Container => "container",
            TraceLayer::Memory => "memory",
            TraceLayer::Pool => "pool",
        }
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

impl std::str::FromStr for TraceLayer {
    type Err = String;

    fn from_str(s: &str) -> Result<TraceLayer, String> {
        match s {
            "harness" => Ok(TraceLayer::Harness),
            "container" => Ok(TraceLayer::Container),
            "memory" => Ok(TraceLayer::Memory),
            "pool" => Ok(TraceLayer::Pool),
            other => Err(format!(
                "unknown trace layer '{other}' (expected harness, container, memory or pool)"
            )),
        }
    }
}

/// A set of [`TraceLayer`]s, used to filter emission at the source so
/// disabled layers cost one branch per event site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerMask(u8);

impl LayerMask {
    /// Every layer enabled (the default for `--trace`).
    pub const ALL: LayerMask = LayerMask(0b1111);
    /// No layer enabled.
    pub const NONE: LayerMask = LayerMask(0);

    /// A mask with exactly one layer enabled.
    pub fn only(layer: TraceLayer) -> LayerMask {
        LayerMask(layer.bit())
    }

    /// This mask with `layer` also enabled.
    pub fn with(self, layer: TraceLayer) -> LayerMask {
        LayerMask(self.0 | layer.bit())
    }

    /// Whether `layer` is enabled.
    pub fn contains(self, layer: TraceLayer) -> bool {
        self.0 & layer.bit() != 0
    }

    /// Parses a comma-separated layer list (`"container,pool"`).
    /// Empty segments are ignored; an unknown name is an error.
    pub fn parse_list(list: &str) -> Result<LayerMask, String> {
        let mut mask = LayerMask::NONE;
        for part in list.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            mask = mask.with(part.parse::<TraceLayer>()?);
        }
        Ok(mask)
    }
}

impl Default for LayerMask {
    fn default() -> LayerMask {
        LayerMask::ALL
    }
}

/// The stall family an [`EventKind::ExecStall`] span belongs to.
///
/// Mirrors the non-trivial blame components of
/// `faasmem-metrics::blame` (the trace crate stays dependency-free of
/// the metrics crate, so the names — not the types — are the contract:
/// each `name()` equals the matching `BlameComponent::name()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallCause {
    /// CPU cost of servicing page faults.
    FaultCpu,
    /// Wall time stalled on remote page transfers (incl. retry
    /// backoff).
    RecallStall,
    /// Extra penalty of a replica detour after primary loss or an open
    /// breaker.
    FailoverDetour,
    /// Time wasted on a recall attempt that ultimately gave up.
    AbandonedWait,
    /// Slow-path cold rebuild of remote state lost beyond recovery.
    ForcedRebuild,
}

impl StallCause {
    /// Every cause, in a fixed order.
    pub const ALL: [StallCause; 5] = [
        StallCause::FaultCpu,
        StallCause::RecallStall,
        StallCause::FailoverDetour,
        StallCause::AbandonedWait,
        StallCause::ForcedRebuild,
    ];

    /// Stable snake_case name used in JSONL payloads; equals the
    /// matching blame-component name.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::FaultCpu => "fault_cpu",
            StallCause::RecallStall => "recall_stall",
            StallCause::FailoverDetour => "failover_detour",
            StallCause::AbandonedWait => "abandoned_wait",
            StallCause::ForcedRebuild => "forced_rebuild",
        }
    }

    /// Parses a cause from its canonical name.
    pub fn from_name(name: &str) -> Option<StallCause> {
        StallCause::ALL.into_iter().find(|c| c.name() == name)
    }
}

/// What happened. Each variant belongs to one [`TraceLayer`] and
/// carries a small, fully deterministic payload (counts, byte totals,
/// simulated durations in microseconds — never wall-clock).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    // -- harness ------------------------------------------------------
    /// A grid cell began: the experiment labels and seeds for the run.
    CellStart {
        /// Trace label (workload trace name).
        trace: String,
        /// Benchmark label.
        bench: String,
        /// Config label.
        config: String,
        /// Policy label.
        policy: String,
        /// Deterministic cell seed.
        seed: u64,
    },
    /// A grid cell finished cleanly.
    CellEnd {
        /// Requests completed over the cell.
        requests: u64,
        /// Simulated duration of the run in seconds.
        sim_secs: f64,
    },

    // -- container lifecycle ------------------------------------------
    /// A request arrived for a function.
    RequestArrive {
        /// Function index within the registered spec set.
        function: u32,
    },
    /// A cold start began: a new container was created.
    ContainerLaunch {
        /// Function index the container serves.
        function: u32,
    },
    /// The container runtime finished loading.
    RuntimeLoaded,
    /// Language/runtime initialization completed.
    InitDone,
    /// Request execution began on a container.
    ExecStart {
        /// Whether this execution is the container's cold start.
        cold: bool,
    },
    /// Request execution finished.
    ExecEnd {
        /// End-to-end request latency in simulated microseconds.
        latency_us: u64,
        /// Demand page faults taken during this execution.
        faults: u64,
    },
    /// One named stall component charged to the executing request.
    ///
    /// The platform previously folded all stalls invisibly into the
    /// execution window; this is the begin marker of a synthetic child
    /// span. Stalls serialize at the head of the execution window, so
    /// the span covers `[t, t + us)` with consecutive `ExecStall`
    /// events of one request laid end to end — the matching
    /// [`EventKind::ExecEnd`] closes the chain.
    ExecStall {
        /// Which blame family the stall belongs to.
        cause: StallCause,
        /// Stalled simulated microseconds.
        us: u64,
    },
    /// The container went idle into the keep-alive pool.
    KeepAliveEnter,
    /// The container was recycled (keep-alive expiry or fault policy).
    ContainerRetire {
        /// Requests the container served over its lifetime.
        requests: u64,
    },
    /// The container was killed by an injected crash event.
    ContainerCrash,
    /// A memory-node loss event hit the pool.
    NodeLoss {
        /// Containers forcibly recycled by the loss.
        victims: u64,
        /// Remote bytes lost with the node.
        lost_bytes: u64,
    },

    // -- memory -------------------------------------------------------
    /// An access-bit scan over a container's pages.
    AccessScan {
        /// Pages resident (local + remote) at scan time.
        live: u64,
        /// Pages observed accessed since the previous scan.
        accessed: u64,
    },
    /// A new MGLRU generation was created (promote tip).
    GenerationCreate {
        /// The new generation number.
        generation: u64,
    },
    /// Generations were aged and idle pages collected (demote).
    GenerationAge {
        /// Generation threshold used for collection.
        threshold: u64,
        /// Pages collected as offload candidates.
        collected: u64,
    },
    /// Pages moved local → remote in the page table.
    MemOffload {
        /// Pages offloaded.
        pages: u64,
    },
    /// Pages moved remote → local in the page table.
    MemPageIn {
        /// Pages brought back.
        pages: u64,
        /// `true` for demand faults, `false` for prefetch.
        demand: bool,
    },

    // -- pool ---------------------------------------------------------
    /// A transfer to the memory pool completed.
    PoolPageOut {
        /// Bytes moved.
        bytes: u64,
        /// Transfer duration in simulated microseconds.
        stall_us: u64,
        /// Time spent queued behind earlier transfers (saturation).
        queued_us: u64,
    },
    /// A transfer back from the memory pool completed.
    PoolPageIn {
        /// Bytes moved.
        bytes: u64,
        /// Transfer duration in simulated microseconds.
        stall_us: u64,
        /// Time spent queued behind earlier transfers (saturation).
        queued_us: u64,
    },
    /// Remote bytes were discarded without transfer (container retire).
    PoolDiscard {
        /// Bytes released.
        bytes: u64,
    },
    /// A recall transfer was issued to the pool — the begin marker
    /// paired with the completing [`EventKind::PoolPageIn`] (which was
    /// previously the only, point, event of a recall).
    RecallBegin {
        /// Bytes requested back.
        bytes: u64,
    },
    /// An offload attempt was refused (suspension or link down).
    OffloadRefused,
    /// A resilient recall attempt timed out and scheduled a retry.
    RecallRetry {
        /// 1-based attempt number that failed.
        attempt: u64,
        /// Total simulated microseconds wasted so far in this recall.
        waited_us: u64,
    },
    /// A resilient recall exhausted its retry budget.
    RecallGaveUp {
        /// Attempts made.
        retries: u64,
        /// Total simulated microseconds wasted before giving up.
        wasted_us: u64,
    },
    /// The recall circuit breaker tripped open.
    BreakerOpen,
    /// The recall circuit breaker cooled down and closed.
    BreakerClose,
    /// A degraded-bandwidth window from the fault plan.
    FaultWindow {
        /// Window start, simulated microseconds.
        start_us: u64,
        /// Window end, simulated microseconds (`u64::MAX` = permanent).
        end_us: u64,
        /// Bandwidth multiplier in effect (0 = outage).
        factor: f64,
    },
    /// A resilient recall was abandoned and the container's lost pages
    /// are being rebuilt locally from a cold start (the previously
    /// silent give-up path after [`EventKind::RecallGaveUp`]).
    RecallAbandoned {
        /// Remote pages written off.
        pages: u64,
        /// Simulated microseconds wasted on the failed recall.
        wasted_us: u64,
        /// Simulated microseconds the local cold rebuild costs.
        rebuild_us: u64,
    },
    /// A recall was served from a surviving replica / fragment set after
    /// the primary pool node failed or the breaker forced a detour.
    ReplicaRecall {
        /// Pool node the recall was served from.
        node: u64,
        /// Bytes brought home.
        bytes: u64,
        /// Extra reconstruction latency charged (erasure-coded reads).
        reconstruct_us: u64,
    },
    /// The repair queue scheduled re-replication of one lost fragment.
    RepairStart {
        /// Target pool node receiving the new copy.
        node: u64,
        /// Bytes to re-replicate.
        bytes: u64,
        /// Repair-queue backlog (bytes) including this item.
        backlog_bytes: u64,
    },
    /// A repair item completed and the segment regained a fragment.
    RepairDone {
        /// Pool node that received the new copy.
        node: u64,
        /// Bytes re-replicated.
        bytes: u64,
        /// Time from the node loss to this repair, simulated µs.
        mttr_us: u64,
    },
    /// A whole pool node died; its replicas/fragments are gone.
    PoolNodeDown {
        /// Id of the dead pool node.
        node: u64,
        /// Segments that dropped below the recovery threshold (lost).
        lost_segments: u64,
        /// Segments that survived above threshold (degraded).
        degraded_segments: u64,
    },
}

impl EventKind {
    /// The layer this kind belongs to.
    pub fn layer(&self) -> TraceLayer {
        use EventKind::*;
        match self {
            CellStart { .. } | CellEnd { .. } => TraceLayer::Harness,
            RequestArrive { .. }
            | ContainerLaunch { .. }
            | RuntimeLoaded
            | InitDone
            | ExecStart { .. }
            | ExecStall { .. }
            | ExecEnd { .. }
            | KeepAliveEnter
            | ContainerRetire { .. }
            | ContainerCrash
            | NodeLoss { .. }
            | RecallAbandoned { .. } => TraceLayer::Container,
            AccessScan { .. }
            | GenerationCreate { .. }
            | GenerationAge { .. }
            | MemOffload { .. }
            | MemPageIn { .. } => TraceLayer::Memory,
            PoolPageOut { .. }
            | PoolPageIn { .. }
            | PoolDiscard { .. }
            | RecallBegin { .. }
            | OffloadRefused
            | RecallRetry { .. }
            | RecallGaveUp { .. }
            | BreakerOpen
            | BreakerClose
            | FaultWindow { .. }
            | ReplicaRecall { .. }
            | RepairStart { .. }
            | RepairDone { .. }
            | PoolNodeDown { .. } => TraceLayer::Pool,
        }
    }

    /// The stable snake_case kind name used in JSONL and Chrome output.
    pub fn name(&self) -> &'static str {
        use EventKind::*;
        match self {
            CellStart { .. } => "cell_start",
            CellEnd { .. } => "cell_end",
            RequestArrive { .. } => "request_arrive",
            ContainerLaunch { .. } => "container_launch",
            RuntimeLoaded => "runtime_loaded",
            InitDone => "init_done",
            ExecStart { .. } => "exec_start",
            ExecStall { .. } => "exec_stall",
            ExecEnd { .. } => "exec_end",
            KeepAliveEnter => "keep_alive_enter",
            ContainerRetire { .. } => "container_retire",
            ContainerCrash => "container_crash",
            NodeLoss { .. } => "node_loss",
            AccessScan { .. } => "access_scan",
            GenerationCreate { .. } => "generation_create",
            GenerationAge { .. } => "generation_age",
            MemOffload { .. } => "mem_offload",
            MemPageIn { .. } => "mem_page_in",
            PoolPageOut { .. } => "pool_page_out",
            PoolPageIn { .. } => "pool_page_in",
            PoolDiscard { .. } => "pool_discard",
            RecallBegin { .. } => "recall_begin",
            OffloadRefused => "offload_refused",
            RecallRetry { .. } => "recall_retry",
            RecallGaveUp { .. } => "recall_gave_up",
            BreakerOpen => "breaker_open",
            BreakerClose => "breaker_close",
            FaultWindow { .. } => "fault_window",
            RecallAbandoned { .. } => "recall_abandoned",
            ReplicaRecall { .. } => "replica_recall",
            RepairStart { .. } => "repair_start",
            RepairDone { .. } => "repair_done",
            PoolNodeDown { .. } => "pool_node_down",
        }
    }

    /// Appends the payload fields, in declaration order, to a JSON
    /// object. Payload keys come after the envelope keys so every line
    /// shares a stable prefix.
    pub fn push_payload(&self, doc: &mut JsonValue) {
        use EventKind::*;
        let num = |v: u64| JsonValue::Num(v as f64);
        match self {
            CellStart {
                trace,
                bench,
                config,
                policy,
                seed,
            } => {
                doc.push("trace", JsonValue::Str(trace.clone()));
                doc.push("bench", JsonValue::Str(bench.clone()));
                doc.push("config", JsonValue::Str(config.clone()));
                doc.push("policy", JsonValue::Str(policy.clone()));
                doc.push("seed", num(*seed));
            }
            CellEnd { requests, sim_secs } => {
                doc.push("requests", num(*requests));
                doc.push("sim_secs", JsonValue::Num(*sim_secs));
            }
            RequestArrive { function } | ContainerLaunch { function } => {
                doc.push("function", num(u64::from(*function)));
            }
            RuntimeLoaded | InitDone | KeepAliveEnter | ContainerCrash | OffloadRefused
            | BreakerOpen | BreakerClose => {}
            ExecStart { cold } => {
                doc.push("cold", JsonValue::Bool(*cold));
            }
            ExecStall { cause, us } => {
                doc.push("cause", JsonValue::Str(cause.name().into()));
                doc.push("us", num(*us));
            }
            ExecEnd { latency_us, faults } => {
                doc.push("latency_us", num(*latency_us));
                doc.push("faults", num(*faults));
            }
            ContainerRetire { requests } => {
                doc.push("requests", num(*requests));
            }
            NodeLoss {
                victims,
                lost_bytes,
            } => {
                doc.push("victims", num(*victims));
                doc.push("lost_bytes", num(*lost_bytes));
            }
            AccessScan { live, accessed } => {
                doc.push("live", num(*live));
                doc.push("accessed", num(*accessed));
            }
            GenerationCreate { generation } => {
                doc.push("generation", num(*generation));
            }
            GenerationAge {
                threshold,
                collected,
            } => {
                doc.push("threshold", num(*threshold));
                doc.push("collected", num(*collected));
            }
            MemOffload { pages } => {
                doc.push("pages", num(*pages));
            }
            MemPageIn { pages, demand } => {
                doc.push("pages", num(*pages));
                doc.push("demand", JsonValue::Bool(*demand));
            }
            PoolPageOut {
                bytes,
                stall_us,
                queued_us,
            }
            | PoolPageIn {
                bytes,
                stall_us,
                queued_us,
            } => {
                doc.push("bytes", num(*bytes));
                doc.push("stall_us", num(*stall_us));
                doc.push("queued_us", num(*queued_us));
            }
            PoolDiscard { bytes } | RecallBegin { bytes } => {
                doc.push("bytes", num(*bytes));
            }
            RecallRetry { attempt, waited_us } => {
                doc.push("attempt", num(*attempt));
                doc.push("waited_us", num(*waited_us));
            }
            RecallGaveUp { retries, wasted_us } => {
                doc.push("retries", num(*retries));
                doc.push("wasted_us", num(*wasted_us));
            }
            FaultWindow {
                start_us,
                end_us,
                factor,
            } => {
                doc.push("start_us", num(*start_us));
                doc.push("end_us", num(*end_us));
                doc.push("factor", JsonValue::Num(*factor));
            }
            RecallAbandoned {
                pages,
                wasted_us,
                rebuild_us,
            } => {
                doc.push("pages", num(*pages));
                doc.push("wasted_us", num(*wasted_us));
                doc.push("rebuild_us", num(*rebuild_us));
            }
            ReplicaRecall {
                node,
                bytes,
                reconstruct_us,
            } => {
                doc.push("node", num(*node));
                doc.push("bytes", num(*bytes));
                doc.push("reconstruct_us", num(*reconstruct_us));
            }
            RepairStart {
                node,
                bytes,
                backlog_bytes,
            } => {
                doc.push("node", num(*node));
                doc.push("bytes", num(*bytes));
                doc.push("backlog_bytes", num(*backlog_bytes));
            }
            RepairDone {
                node,
                bytes,
                mttr_us,
            } => {
                doc.push("node", num(*node));
                doc.push("bytes", num(*bytes));
                doc.push("mttr_us", num(*mttr_us));
            }
            PoolNodeDown {
                node,
                lost_segments,
                degraded_segments,
            } => {
                doc.push("node", num(*node));
                doc.push("lost_segments", num(*lost_segments));
                doc.push("degraded_segments", num(*degraded_segments));
            }
        }
    }
}

/// One stamped trace record. `(time, seq)` is a total order within a
/// cell; `container`/`request` are parent span ids linking a page or
/// pool operation back to the container and request that caused it.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated timestamp at emission.
    pub time: SimTime,
    /// Strictly monotone per-tracer sequence number (tie-break).
    pub seq: u64,
    /// Owning container id, when the event is container-scoped.
    pub container: Option<u64>,
    /// Owning request index, when the event is request-scoped.
    pub request: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The `(sim_time_us, seq)` sort key.
    pub fn key(&self) -> (u64, u64) {
        (self.time.as_micros(), self.seq)
    }

    /// Renders the event as one JSONL object. Envelope keys come first
    /// in fixed order (`cell`, `t`, `seq`, `layer`, `kind`, then `ctr`
    /// and `req` when present), followed by the payload.
    pub fn to_json(&self, cell: Option<u64>) -> JsonValue {
        let mut doc = JsonValue::obj();
        if let Some(cell) = cell {
            doc.push("cell", JsonValue::Num(cell as f64));
        }
        doc.push("t", JsonValue::Num(self.time.as_micros() as f64));
        doc.push("seq", JsonValue::Num(self.seq as f64));
        doc.push("layer", JsonValue::Str(self.kind.layer().name().into()));
        doc.push("kind", JsonValue::Str(self.kind.name().into()));
        if let Some(ctr) = self.container {
            doc.push("ctr", JsonValue::Num(ctr as f64));
        }
        if let Some(req) = self.request {
            doc.push("req", JsonValue::Num(req as f64));
        }
        self.kind.push_payload(&mut doc);
        doc
    }

    /// The event as one compact JSONL line (no trailing newline).
    pub fn jsonl_line(&self, cell: Option<u64>) -> String {
        self.to_json(cell).to_compact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_names_roundtrip_through_fromstr() {
        for layer in TraceLayer::ALL {
            assert_eq!(layer.name().parse::<TraceLayer>().unwrap(), layer);
        }
        assert!("disk".parse::<TraceLayer>().is_err());
    }

    #[test]
    fn mask_parsing_and_membership() {
        let mask = LayerMask::parse_list("container, pool,").unwrap();
        assert!(mask.contains(TraceLayer::Container));
        assert!(mask.contains(TraceLayer::Pool));
        assert!(!mask.contains(TraceLayer::Memory));
        assert!(!mask.contains(TraceLayer::Harness));
        assert_eq!(LayerMask::parse_list("").unwrap(), LayerMask::NONE);
        assert!(LayerMask::parse_list("container,bogus").is_err());
        assert_eq!(LayerMask::default(), LayerMask::ALL);
        for layer in TraceLayer::ALL {
            assert!(LayerMask::ALL.contains(layer));
            assert!(!LayerMask::NONE.contains(layer));
            assert!(LayerMask::only(layer).contains(layer));
        }
    }

    #[test]
    fn stall_cause_names_roundtrip() {
        for cause in StallCause::ALL {
            assert_eq!(StallCause::from_name(cause.name()), Some(cause));
        }
        assert_eq!(StallCause::from_name("coffee_break"), None);
    }

    #[test]
    fn jsonl_envelope_key_order_is_fixed() {
        let event = TraceEvent {
            time: SimTime::from_secs(1),
            seq: 7,
            container: Some(3),
            request: Some(12),
            kind: EventKind::ExecEnd {
                latency_us: 4500,
                faults: 2,
            },
        };
        assert_eq!(
            event.jsonl_line(Some(0)),
            "{\"cell\":0,\"t\":1000000,\"seq\":7,\"layer\":\"container\",\
             \"kind\":\"exec_end\",\"ctr\":3,\"req\":12,\"latency_us\":4500,\"faults\":2}"
        );
    }

    #[test]
    fn optional_span_ids_are_omitted() {
        let event = TraceEvent {
            time: SimTime::ZERO,
            seq: 0,
            container: None,
            request: None,
            kind: EventKind::BreakerOpen,
        };
        assert_eq!(
            event.jsonl_line(None),
            "{\"t\":0,\"seq\":0,\"layer\":\"pool\",\"kind\":\"breaker_open\"}"
        );
    }

    #[test]
    fn every_kind_reports_a_consistent_layer() {
        use EventKind::*;
        let kinds: Vec<EventKind> = vec![
            CellStart {
                trace: "t".into(),
                bench: "b".into(),
                config: "c".into(),
                policy: "p".into(),
                seed: 1,
            },
            CellEnd {
                requests: 1,
                sim_secs: 1.0,
            },
            RequestArrive { function: 0 },
            ContainerLaunch { function: 0 },
            RuntimeLoaded,
            InitDone,
            ExecStart { cold: true },
            ExecStall {
                cause: StallCause::RecallStall,
                us: 250,
            },
            ExecEnd {
                latency_us: 1,
                faults: 0,
            },
            KeepAliveEnter,
            ContainerRetire { requests: 1 },
            ContainerCrash,
            NodeLoss {
                victims: 1,
                lost_bytes: 4096,
            },
            AccessScan {
                live: 1,
                accessed: 1,
            },
            GenerationCreate { generation: 2 },
            GenerationAge {
                threshold: 1,
                collected: 3,
            },
            MemOffload { pages: 4 },
            MemPageIn {
                pages: 2,
                demand: true,
            },
            PoolPageOut {
                bytes: 4096,
                stall_us: 10,
                queued_us: 0,
            },
            PoolPageIn {
                bytes: 4096,
                stall_us: 10,
                queued_us: 5,
            },
            PoolDiscard { bytes: 4096 },
            RecallBegin { bytes: 4096 },
            OffloadRefused,
            RecallRetry {
                attempt: 1,
                waited_us: 100,
            },
            RecallGaveUp {
                retries: 3,
                wasted_us: 300,
            },
            BreakerOpen,
            BreakerClose,
            FaultWindow {
                start_us: 0,
                end_us: 100,
                factor: 0.5,
            },
            RecallAbandoned {
                pages: 8,
                wasted_us: 300,
                rebuild_us: 5_000,
            },
            ReplicaRecall {
                node: 1,
                bytes: 4096,
                reconstruct_us: 500,
            },
            RepairStart {
                node: 2,
                bytes: 4096,
                backlog_bytes: 8192,
            },
            RepairDone {
                node: 2,
                bytes: 4096,
                mttr_us: 1_000_000,
            },
            PoolNodeDown {
                node: 0,
                lost_segments: 1,
                degraded_segments: 2,
            },
        ];
        for kind in &kinds {
            // Every kind serializes without panicking and its name is
            // non-empty; layer() must be stable with the JSONL field.
            let event = TraceEvent {
                time: SimTime::ZERO,
                seq: 0,
                container: None,
                request: None,
                kind: kind.clone(),
            };
            let line = event.jsonl_line(Some(1));
            assert!(line.contains(&format!("\"kind\":\"{}\"", kind.name())));
            assert!(line.contains(&format!("\"layer\":\"{}\"", kind.layer().name())));
        }
    }
}
