//! Minimal JSON tree, writer and parser.
//!
//! The workspace vendors no serialization framework, so it carries its
//! own: an order-preserving [`JsonValue`] tree, a deterministic
//! pretty-printer (object keys keep insertion order, f64 uses Rust's
//! shortest-round-trip formatting, non-finite numbers become `null`), a
//! single-line compact writer for JSONL streams, and a small
//! recursive-descent parser used by the determinism tests, the trace
//! summary tool and the CI schema check to read the files back.
//!
//! This module is the one JSON writer for the whole workspace: grid
//! results, timing files, JSONL traces and Chrome trace exports all
//! funnel through it, so they share one key-ordering and one
//! float-formatting rule. `bench::json` re-exports it.

use std::fmt::Write as _;

/// A JSON document node. Object members keep insertion order so the
/// serialized bytes are a pure function of construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered members.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object.
    pub fn obj() -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Appends a member to an object; panics on non-objects.
    pub fn push(&mut self, key: &str, value: JsonValue) -> &mut Self {
        match self {
            JsonValue::Obj(members) => members.push((key.to_string(), value)),
            _ => panic!("push on non-object JSON value"),
        }
        self
    }

    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace (for JSONL
    /// streams). Shares the number and string rules with
    /// [`to_pretty`](Self::to_pretty), so the two forms agree on every
    /// scalar byte.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) if items.is_empty() => out.push_str("[]"),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(members) if members.is_empty() => out.push_str("{}"),
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_num(out, *n),
            JsonValue::Str(s) => write_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without the ".0" Rust's Display keeps off
        // anyway, but go through i64/u-range to avoid "-0".
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Covers the full grammar the writer emits
/// (no `\uXXXX` surrogate pairs beyond the BMP).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\n' | b'\r' | b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_deterministic_pretty_output() {
        let mut doc = JsonValue::obj();
        doc.push("name", JsonValue::Str("grid".into()));
        doc.push("count", JsonValue::Num(3.0));
        doc.push("ratio", JsonValue::Num(0.5));
        doc.push(
            "cells",
            JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
        );
        let text = doc.to_pretty();
        assert_eq!(
            text,
            "{\n  \"name\": \"grid\",\n  \"count\": 3,\n  \"ratio\": 0.5,\n  \"cells\": [\n    true,\n    null\n  ]\n}\n"
        );
    }

    #[test]
    fn compact_form_matches_pretty_scalars() {
        let mut doc = JsonValue::obj();
        doc.push("name", JsonValue::Str("grid".into()));
        doc.push("count", JsonValue::Num(3.0));
        doc.push("ratio", JsonValue::Num(0.5));
        doc.push(
            "cells",
            JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
        );
        assert_eq!(
            doc.to_compact(),
            "{\"name\":\"grid\",\"count\":3,\"ratio\":0.5,\"cells\":[true,null]}"
        );
        assert_eq!(parse(&doc.to_compact()).unwrap(), doc);
    }

    #[test]
    fn roundtrips_through_parser() {
        let mut doc = JsonValue::obj();
        doc.push("esc", JsonValue::Str("a\"b\\c\nd\te\u{1}".into()));
        doc.push("neg", JsonValue::Num(-12.25));
        doc.push("big", JsonValue::Num(1.5e20));
        doc.push("empty_obj", JsonValue::obj());
        doc.push("empty_arr", JsonValue::Arr(vec![]));
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let doc = JsonValue::Arr(vec![
            JsonValue::Num(f64::NAN),
            JsonValue::Num(f64::INFINITY),
        ]);
        assert_eq!(doc.to_pretty(), "[\n  null,\n  null\n]\n");
        assert_eq!(doc.to_compact(), "[null,null]");
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        let mut out = String::new();
        write_num(&mut out, 42.0);
        out.push(' ');
        write_num(&mut out, -0.0);
        assert_eq!(out, "42 0");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn lookup_helpers() {
        let doc = parse("{\"a\": [1, \"x\"], \"b\": 2}").unwrap();
        assert_eq!(doc.get("b").and_then(JsonValue::as_num), Some(2.0));
        let arr = doc.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[1].as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
    }
}
