#![warn(missing_docs)]

//! Deterministic event tracing for the FaaSMem reproduction.
//!
//! The simulator's end-of-run aggregates say *what* happened; this
//! crate records *why* and *when*: a typed, sim-time-stamped event
//! stream covering container lifecycle, page-table activity, memory-
//! pool transfers and harness cell boundaries. The design constraints,
//! in order:
//!
//! 1. **Determinism.** Events are stamped `(sim_time, seq)` by a
//!    single per-cell [`Tracer`]; `seq` is strictly monotone, so the
//!    pair is a total order no matter how many subsystems interleave.
//!    Wall-clock never enters an event, and cells are traced
//!    independently, so a merged trace is byte-identical for any
//!    `--jobs` value.
//! 2. **Zero cost when off.** The default [`Tracer::disabled`] handle
//!    is a `None`; every emission site is one well-predicted branch
//!    and no allocation.
//! 3. **Pluggable sinks.** [`BufferSink`] (harness default),
//!    [`RingSink`] (bounded flight recorder), [`JsonlSink`]
//!    (streaming), [`NullSink`] — all behind the [`TraceSink`] trait.
//!
//! Export paths: compact JSONL via [`TraceEvent::jsonl_line`], Chrome
//! trace-event / Perfetto via [`chrome::chrome_trace`], and per-
//! container timeline reconstruction via [`summary::summarize_jsonl`].
//! The [`json`] module is the workspace's one JSON writer/parser
//! (re-exported by `bench::json`), so result files, timing files and
//! traces share a single formatting rule.

pub mod chrome;
pub mod event;
pub mod json;
pub mod query;
pub mod spans;
pub mod summary;
pub mod tracer;

pub use chrome::{chrome_trace, ChromeGroup};
pub use event::{EventKind, LayerMask, StallCause, TraceEvent, TraceLayer};
pub use json::JsonValue;
pub use query::{known_functions, QueryHit, QueryOptions};
pub use spans::{build_spans, spans_from_jsonl, CellSpans, InvocationSpans, Span, SpanForest};
pub use summary::{summarize_jsonl, CellSummary, ContainerTimeline, TraceSummary};
pub use tracer::{BufferSink, JsonlSink, NullSink, RingSink, TraceSink, Tracer};
