//! Queries over reconstructed span forests: slowest-N, per-component
//! ranking, and critical-path rendering.
//!
//! This is the library behind the `trace_query` bin. Everything is a
//! pure function of the parsed [`SpanForest`], so queries over the same
//! trace file render identically no matter which harness run (serial,
//! `--jobs N`, `--shards N`) produced it.

use crate::event::StallCause;
use crate::spans::{InvocationSpans, SpanForest};
use std::fmt::Write as _;

/// What `trace_query` should select and how to render it.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// How many invocations to keep, slowest first.
    pub slowest: usize,
    /// Rank by this blame component's contribution instead of
    /// end-to-end latency; invocations where it is zero are dropped.
    pub component: Option<String>,
    /// Restrict the query to one harness cell.
    pub cell: Option<u64>,
    /// Restrict the query to one function id. Unlike `cell`, the raw
    /// string is kept so an unknown (or unparsable) value can error
    /// with the trace's actual function vocabulary.
    pub function: Option<String>,
    /// Also render each invocation's critical path (spans by
    /// descending contribution).
    pub critical_path: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            slowest: 10,
            component: None,
            cell: None,
            function: None,
            critical_path: false,
        }
    }
}

/// The distinct function ids present in `forest`, ascending.
pub fn known_functions(forest: &SpanForest) -> Vec<u64> {
    let mut ids: Vec<u64> = forest
        .cells
        .iter()
        .flat_map(|cell| cell.invocations.iter().filter_map(|inv| inv.function))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Every blame-component name a span can be charged to, in canonical
/// reporting order: the pre-exec segments, execution, then the stall
/// families in [`StallCause::ALL`] order.
pub fn known_components() -> Vec<&'static str> {
    let mut names = vec!["queue", "cold_start", "exec"];
    names.extend(StallCause::ALL.iter().map(|c| c.name()));
    names
}

/// One selected invocation plus the key it was ranked by.
#[derive(Debug, Clone)]
pub struct QueryHit<'a> {
    /// The harness cell the invocation ran in.
    pub cell: u64,
    /// The cell's `trace/bench/config/policy` label (may be empty).
    pub label: &'a str,
    /// The invocation's span tree.
    pub invocation: &'a InvocationSpans,
    /// Ranking key in microseconds: end-to-end latency, or the chosen
    /// component's contribution under `--component`.
    pub key_us: u64,
}

/// Selects the slowest invocations of `forest` under `opts`.
///
/// Returns an error for an unknown component name (listing the valid
/// ones). Ties rank in `(cell, completion)` order, so the selection is
/// deterministic.
pub fn select<'a>(
    forest: &'a SpanForest,
    opts: &QueryOptions,
) -> Result<Vec<QueryHit<'a>>, String> {
    if let Some(name) = &opts.component {
        if !known_components().contains(&name.as_str()) {
            return Err(format!(
                "unknown component {name:?} (expected one of: {})",
                known_components().join(", ")
            ));
        }
    }
    let function = match &opts.function {
        None => None,
        Some(raw) => {
            let known = known_functions(forest);
            match raw.parse::<u64>().ok().filter(|f| known.contains(f)) {
                Some(f) => Some(f),
                None => {
                    let vocab: Vec<String> = known.iter().map(|f| f.to_string()).collect();
                    return Err(format!(
                        "unknown function {raw:?} (trace contains functions: {})",
                        vocab.join(", ")
                    ));
                }
            }
        }
    };
    let mut hits: Vec<QueryHit<'a>> = Vec::new();
    for cell in &forest.cells {
        if opts.cell.is_some_and(|want| want != cell.cell) {
            continue;
        }
        for invocation in &cell.invocations {
            if function.is_some() && invocation.function != function {
                continue;
            }
            let key_us = match &opts.component {
                None => invocation.latency_us,
                Some(name) => invocation
                    .blame()
                    .into_iter()
                    .find(|(component, _)| component == name)
                    .map_or(0, |(_, us)| us),
            };
            if opts.component.is_some() && key_us == 0 {
                continue;
            }
            hits.push(QueryHit {
                cell: cell.cell,
                label: &cell.label,
                invocation,
                key_us,
            });
        }
    }
    // Stable sort: ties keep (cell, completion) order.
    hits.sort_by_key(|h| std::cmp::Reverse(h.key_us));
    hits.truncate(opts.slowest);
    Ok(hits)
}

fn fmt_ms(us: u64) -> String {
    format!("{:.1}ms", us as f64 / 1000.0)
}

/// Renders a query result as the text the bin prints.
pub fn render(hits: &[QueryHit<'_>], opts: &QueryOptions) -> String {
    let mut out = String::new();
    let metric = opts.component.as_deref().unwrap_or("latency");
    let _ = writeln!(out, "slowest {} invocations by {metric}:", hits.len());
    for (rank, hit) in hits.iter().enumerate() {
        let inv = hit.invocation;
        let blame: Vec<String> = inv
            .blame()
            .iter()
            .map(|(component, us)| format!("{component}={}", fmt_ms(*us)))
            .collect();
        let _ = writeln!(
            out,
            "#{:<3} cell {} req {} [{}] {} arrived {} latency {} ({metric} {}) {}",
            rank + 1,
            hit.cell,
            inv.request,
            if hit.label.is_empty() { "-" } else { hit.label },
            if inv.cold { "cold" } else { "warm" },
            fmt_ms(inv.arrived_us),
            fmt_ms(inv.latency_us),
            fmt_ms(hit.key_us),
            blame.join(" "),
        );
        if opts.critical_path {
            for span in inv.critical_path() {
                let _ = writeln!(
                    out,
                    "      {:<16} {:>10} [{}..{})us",
                    span.kind.name(),
                    fmt_ms(span.duration_us()),
                    span.start_us,
                    span.end_us,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{CellSpans, Span, SpanKind};

    fn inv(request: u64, latency: u64, stall: u64) -> InvocationSpans {
        let exec_end = latency;
        InvocationSpans {
            request,
            container: Some(request),
            function: Some(0),
            cold: false,
            arrived_us: 0,
            end_us: exec_end,
            latency_us: latency,
            faults: 0,
            children: vec![
                Span {
                    kind: SpanKind::Stall(StallCause::RecallStall),
                    start_us: 0,
                    end_us: stall,
                },
                Span {
                    kind: SpanKind::Exec,
                    start_us: stall,
                    end_us: exec_end,
                },
            ],
        }
    }

    fn forest() -> SpanForest {
        SpanForest {
            cells: vec![
                CellSpans {
                    cell: 0,
                    label: "t/b/c/p".into(),
                    invocations: vec![inv(0, 500, 0), inv(1, 2_000, 900)],
                },
                CellSpans {
                    cell: 1,
                    label: String::new(),
                    invocations: vec![inv(0, 1_000, 100)],
                },
            ],
        }
    }

    #[test]
    fn ranks_by_latency_by_default() {
        let forest = forest();
        let hits = select(&forest, &QueryOptions::default()).unwrap();
        let keys: Vec<(u64, u64, u64)> = hits
            .iter()
            .map(|h| (h.cell, h.invocation.request, h.key_us))
            .collect();
        assert_eq!(keys, vec![(0, 1, 2_000), (1, 0, 1_000), (0, 0, 500)]);
    }

    #[test]
    fn slowest_truncates_and_cell_filters() {
        let forest = forest();
        let opts = QueryOptions {
            slowest: 1,
            ..QueryOptions::default()
        };
        let hits = select(&forest, &opts).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].invocation.latency_us, 2_000);

        let opts = QueryOptions {
            cell: Some(1),
            ..QueryOptions::default()
        };
        let hits = select(&forest, &opts).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].cell, 1);
    }

    #[test]
    fn component_ranking_drops_zero_contributors() {
        let forest = forest();
        let opts = QueryOptions {
            component: Some("recall_stall".into()),
            ..QueryOptions::default()
        };
        let hits = select(&forest, &opts).unwrap();
        let keys: Vec<u64> = hits.iter().map(|h| h.key_us).collect();
        assert_eq!(keys, vec![900, 100]);
    }

    #[test]
    fn unknown_component_is_an_error() {
        let forest = forest();
        let opts = QueryOptions {
            component: Some("gremlins".into()),
            ..QueryOptions::default()
        };
        let err = select(&forest, &opts).unwrap_err();
        assert!(err.contains("gremlins"), "{err}");
        assert!(err.contains("recall_stall"), "{err}");
    }

    #[test]
    fn render_includes_blame_and_critical_path() {
        let forest = forest();
        let opts = QueryOptions {
            critical_path: true,
            ..QueryOptions::default()
        };
        let hits = select(&forest, &opts).unwrap();
        let text = render(&hits, &opts);
        assert!(text.contains("slowest 3 invocations by latency:"));
        assert!(text.contains("recall_stall=0.9ms"));
        assert!(text.contains("exec"));
        // Critical path lists the larger span first.
        let exec_at = text.find("      exec").unwrap();
        let stall_at = text.find("      recall_stall").unwrap();
        assert!(exec_at < stall_at);
    }

    #[test]
    fn function_filter_keeps_only_that_function() {
        let mut forest = forest();
        forest.cells[0].invocations[1].function = Some(7);
        let opts = QueryOptions {
            function: Some("7".into()),
            ..QueryOptions::default()
        };
        let hits = select(&forest, &opts).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].invocation.function, Some(7));
        assert_eq!(known_functions(&forest), vec![0, 7]);
    }

    #[test]
    fn unknown_function_errors_with_vocabulary() {
        let mut forest = forest();
        forest.cells[0].invocations[1].function = Some(7);
        for raw in ["9", "resnet"] {
            let opts = QueryOptions {
                function: Some(raw.into()),
                ..QueryOptions::default()
            };
            let err = select(&forest, &opts).unwrap_err();
            assert!(err.contains(raw), "{err}");
            assert!(err.contains("0, 7"), "{err}");
        }
    }

    #[test]
    fn known_components_match_span_vocabulary() {
        let names = known_components();
        assert!(names.contains(&"queue"));
        assert!(names.contains(&"cold_start"));
        assert!(names.contains(&"forced_rebuild"));
        assert_eq!(names.len(), 3 + StallCause::ALL.len());
    }
}
