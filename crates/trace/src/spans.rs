//! Per-invocation causal span trees reconstructed from the event
//! stream.
//!
//! The platform emits point markers (`request_arrive`,
//! `container_launch`, `runtime_loaded`, `init_done`, `exec_start`,
//! `exec_stall`, `exec_end`); this module folds them back into the
//! span tree of each invocation:
//!
//! ```text
//! invocation ──┬─ queue   [arrive,       launch)        (scheduler wait)
//!              ├─ launch  [launch,       runtime_loaded)  cold only
//!              ├─ init    [runtime_loaded, exec_start)    cold only
//!              ├─ stall*  [exec_start,   …)             one per cause
//!              └─ exec    [last stall end, exec_end)
//! ```
//!
//! Stalls serialize at the head of the execution window (that is how
//! the simulator charges them), so consecutive `exec_stall` events of
//! one request tile the window front-to-back and the pure-exec span is
//! the remainder. Child spans therefore tile `[arrive, exec_end)`
//! exactly, which is the span-level face of the blame conservation
//! invariant: child durations sum to the reported end-to-end latency.
//!
//! **Determinism.** Reconstruction is a pure function of the event
//! stream's `(sim_time, seq)` total order: the builder sorts rows by
//! that key before folding, so any arrival permutation of the same
//! events yields the identical span forest (property-tested below).

use crate::event::{EventKind, StallCause, TraceEvent};
use crate::json::{self, JsonValue};
use std::collections::BTreeMap;

/// What a child span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Arrival → provisioning start (zero on the single-node platform).
    Queue,
    /// Container runtime launch (cold starts only).
    Launch,
    /// Runtime/language initialization (cold starts only).
    Init,
    /// One stall component at the head of the execution window.
    Stall(StallCause),
    /// Pure execution (service time minus stalls).
    Exec,
}

impl SpanKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Launch => "launch",
            SpanKind::Init => "init",
            SpanKind::Stall(cause) => cause.name(),
            SpanKind::Exec => "exec",
        }
    }

    /// The blame component this span is charged to (`launch` and
    /// `init` both fold into `cold_start`).
    pub fn component(self) -> &'static str {
        match self {
            SpanKind::Queue => "queue",
            SpanKind::Launch | SpanKind::Init => "cold_start",
            SpanKind::Stall(cause) => cause.name(),
            SpanKind::Exec => "exec",
        }
    }
}

/// One child span of an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the time went to.
    pub kind: SpanKind,
    /// Start, simulated microseconds.
    pub start_us: u64,
    /// Exclusive end, simulated microseconds.
    pub end_us: u64,
}

impl Span {
    /// The span's length in simulated microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One invocation's reconstructed span tree (root + ordered children).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationSpans {
    /// Request index within the cell.
    pub request: u64,
    /// Container that served the request, when known.
    pub container: Option<u64>,
    /// Function index, when a `request_arrive` event was seen.
    pub function: Option<u64>,
    /// Whether the execution was the container's cold start.
    pub cold: bool,
    /// Arrival timestamp (root span start).
    pub arrived_us: u64,
    /// Completion timestamp (root span end).
    pub end_us: u64,
    /// End-to-end latency reported by `exec_end`.
    pub latency_us: u64,
    /// Demand faults reported by `exec_end`.
    pub faults: u64,
    /// Child spans in timeline order, tiling `[arrived_us, end_us)`.
    pub children: Vec<Span>,
}

impl InvocationSpans {
    /// Per-blame-component microsecond totals over the children, in
    /// first-appearance order.
    pub fn blame(&self) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        for span in &self.children {
            let component = span.kind.component();
            match totals.iter_mut().find(|(name, _)| *name == component) {
                Some((_, total)) => *total += span.duration_us(),
                None => totals.push((component, span.duration_us())),
            }
        }
        totals
    }

    /// The critical path: children ordered by descending contribution
    /// (the chain is fully serial, so "critical" means "largest").
    /// Ties keep timeline order.
    pub fn critical_path(&self) -> Vec<Span> {
        let mut path = self.children.clone();
        path.sort_by_key(|s| std::cmp::Reverse(s.duration_us()));
        path
    }

    /// Whether the children exactly tile the invocation: contiguous,
    /// starting at arrival, ending at completion, durations summing to
    /// the reported latency. The platform guarantees this; streams
    /// from other writers might not.
    pub fn conserves(&self) -> bool {
        let mut cursor = self.arrived_us;
        for span in &self.children {
            if span.start_us != cursor || span.end_us < span.start_us {
                return false;
            }
            cursor = span.end_us;
        }
        cursor == self.end_us && self.end_us.saturating_sub(self.arrived_us) == self.latency_us
    }
}

/// The span forest of one grid cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellSpans {
    /// Cell index.
    pub cell: u64,
    /// `trace/bench/config/policy` label from the cell-start event
    /// (empty for single-cell streams without one).
    pub label: String,
    /// Completed invocations in completion (`exec_end`) order.
    pub invocations: Vec<InvocationSpans>,
}

/// A parsed trace: one span forest per cell, in cell order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanForest {
    /// Per-cell span forests.
    pub cells: Vec<CellSpans>,
}

/// The subset of event data span reconstruction consumes; both the
/// typed-event and JSONL paths reduce to this row before folding.
#[derive(Debug, Clone)]
struct Row {
    t: u64,
    seq: u64,
    ctr: Option<u64>,
    req: Option<u64>,
    kind: RowKind,
}

#[derive(Debug, Clone)]
enum RowKind {
    Arrive { function: u64 },
    Launch,
    RuntimeLoaded,
    InitDone,
    ExecStart { cold: bool },
    ExecStall { cause: StallCause, us: u64 },
    ExecEnd { latency_us: u64, faults: u64 },
    CellLabel { label: String },
}

fn row_of(event: &TraceEvent) -> Option<Row> {
    let kind = match &event.kind {
        EventKind::RequestArrive { function } => RowKind::Arrive {
            function: u64::from(*function),
        },
        EventKind::ContainerLaunch { .. } => RowKind::Launch,
        EventKind::RuntimeLoaded => RowKind::RuntimeLoaded,
        EventKind::InitDone => RowKind::InitDone,
        EventKind::ExecStart { cold } => RowKind::ExecStart { cold: *cold },
        EventKind::ExecStall { cause, us } => RowKind::ExecStall {
            cause: *cause,
            us: *us,
        },
        EventKind::ExecEnd { latency_us, faults } => RowKind::ExecEnd {
            latency_us: *latency_us,
            faults: *faults,
        },
        EventKind::CellStart {
            trace,
            bench,
            config,
            policy,
            ..
        } => RowKind::CellLabel {
            label: format!("{trace}/{bench}/{config}/{policy}"),
        },
        _ => return None,
    };
    Some(Row {
        t: event.time.as_micros(),
        seq: event.seq,
        ctr: event.container,
        req: event.request,
        kind,
    })
}

#[derive(Debug, Clone, Copy, Default)]
struct CtrState {
    launched_us: Option<u64>,
    runtime_loaded_us: Option<u64>,
}

#[derive(Debug, Clone)]
struct Pending {
    arrived_us: u64,
    function: Option<u64>,
    exec_start: Option<(u64, Option<u64>, bool)>,
    stalls: Vec<(StallCause, u64)>,
}

/// Folds rows (any order) into the deterministic span forest of one
/// cell. Sorting by `(t, seq)` first is what makes the result a pure
/// function of the stream's total order rather than arrival order.
fn fold_rows(mut rows: Vec<Row>) -> (String, Vec<InvocationSpans>) {
    rows.sort_by_key(|r| (r.t, r.seq));
    let mut label = String::new();
    let mut containers: BTreeMap<u64, CtrState> = BTreeMap::new();
    let mut pending: BTreeMap<u64, Pending> = BTreeMap::new();
    let mut done: Vec<InvocationSpans> = Vec::new();

    for row in rows {
        match row.kind {
            RowKind::CellLabel { label: l } => label = l,
            RowKind::Arrive { function } => {
                if let Some(req) = row.req {
                    pending.insert(
                        req,
                        Pending {
                            arrived_us: row.t,
                            function: Some(function),
                            exec_start: None,
                            stalls: Vec::new(),
                        },
                    );
                }
            }
            RowKind::Launch => {
                if let Some(ctr) = row.ctr {
                    // A fresh launch resets the container's cold-start
                    // markers (ids are not recycled today, but the
                    // builder must not rely on that).
                    containers.insert(
                        ctr,
                        CtrState {
                            launched_us: Some(row.t),
                            runtime_loaded_us: None,
                        },
                    );
                }
            }
            RowKind::RuntimeLoaded => {
                if let Some(ctr) = row.ctr {
                    containers.entry(ctr).or_default().runtime_loaded_us = Some(row.t);
                }
            }
            RowKind::InitDone => {}
            RowKind::ExecStart { cold } => {
                if let Some(req) = row.req {
                    let entry = pending.entry(req).or_insert_with(|| Pending {
                        arrived_us: row.t,
                        function: None,
                        exec_start: None,
                        stalls: Vec::new(),
                    });
                    entry.exec_start = Some((row.t, row.ctr, cold));
                }
            }
            RowKind::ExecStall { cause, us } => {
                if let Some(req) = row.req {
                    if let Some(entry) = pending.get_mut(&req) {
                        entry.stalls.push((cause, us));
                    }
                }
            }
            RowKind::ExecEnd { latency_us, faults } => {
                let Some(req) = row.req else { continue };
                let Some(entry) = pending.remove(&req) else {
                    continue;
                };
                let (exec_start_us, ctr, cold) =
                    entry
                        .exec_start
                        .unwrap_or((entry.arrived_us, row.ctr, false));
                let mut children = Vec::new();
                let mut cursor = entry.arrived_us;
                let mut push = |kind: SpanKind, cursor: &mut u64, end: u64| {
                    // Zero-length spans are elided; `exec` always
                    // appears so every invocation has a service span.
                    if end > *cursor || matches!(kind, SpanKind::Exec) {
                        children.push(Span {
                            kind,
                            start_us: *cursor,
                            end_us: end.max(*cursor),
                        });
                        *cursor = end.max(*cursor);
                    }
                };
                if cold {
                    let state = ctr
                        .and_then(|c| containers.get(&c).copied())
                        .unwrap_or_default();
                    let launch_begin = state.launched_us.unwrap_or(entry.arrived_us);
                    let loaded = state.runtime_loaded_us.unwrap_or(exec_start_us);
                    push(SpanKind::Queue, &mut cursor, launch_begin);
                    push(SpanKind::Launch, &mut cursor, loaded.min(exec_start_us));
                    push(SpanKind::Init, &mut cursor, exec_start_us);
                } else {
                    push(SpanKind::Queue, &mut cursor, exec_start_us);
                }
                for (cause, us) in &entry.stalls {
                    let end = cursor + us;
                    push(SpanKind::Stall(*cause), &mut cursor, end);
                }
                push(SpanKind::Exec, &mut cursor, row.t);
                done.push(InvocationSpans {
                    request: req,
                    container: ctr,
                    function: entry.function,
                    cold,
                    arrived_us: entry.arrived_us,
                    end_us: row.t,
                    latency_us,
                    faults,
                    children,
                });
            }
        }
    }
    (label, done)
}

/// Reconstructs the span forest of one cell from its typed events,
/// in any order.
pub fn build_spans(events: &[TraceEvent]) -> Vec<InvocationSpans> {
    fold_rows(events.iter().filter_map(row_of).collect()).1
}

/// Parses a merged JSONL trace (as written by the harness `--trace`
/// path) into per-cell span forests. Malformed lines are an error.
pub fn spans_from_jsonl(input: &str) -> Result<SpanForest, String> {
    let mut per_cell: BTreeMap<u64, Vec<Row>> = BTreeMap::new();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let num = |key: &str| doc.get(key).and_then(JsonValue::as_num).map(|n| n as u64);
        let text = |key: &str| doc.get(key).and_then(JsonValue::as_str).unwrap_or("");
        let kind = match text("kind") {
            "request_arrive" => RowKind::Arrive {
                function: num("function").unwrap_or(0),
            },
            "container_launch" => RowKind::Launch,
            "runtime_loaded" => RowKind::RuntimeLoaded,
            "init_done" => RowKind::InitDone,
            "exec_start" => RowKind::ExecStart {
                cold: doc.get("cold") == Some(&JsonValue::Bool(true)),
            },
            "exec_stall" => {
                let cause = StallCause::from_name(text("cause")).ok_or_else(|| {
                    format!(
                        "line {}: unknown stall cause {:?}",
                        lineno + 1,
                        text("cause")
                    )
                })?;
                RowKind::ExecStall {
                    cause,
                    us: num("us").unwrap_or(0),
                }
            }
            "exec_end" => RowKind::ExecEnd {
                latency_us: num("latency_us").unwrap_or(0),
                faults: num("faults").unwrap_or(0),
            },
            "cell_start" => RowKind::CellLabel {
                label: format!(
                    "{}/{}/{}/{}",
                    text("trace"),
                    text("bench"),
                    text("config"),
                    text("policy")
                ),
            },
            _ => continue,
        };
        per_cell
            .entry(num("cell").unwrap_or(0))
            .or_default()
            .push(Row {
                t: num("t").unwrap_or(0),
                seq: num("seq").unwrap_or(0),
                ctr: num("ctr"),
                req: num("req"),
                kind,
            });
    }
    let mut forest = SpanForest::default();
    for (cell, rows) in per_cell {
        let (label, invocations) = fold_rows(rows);
        forest.cells.push(CellSpans {
            cell,
            label,
            invocations,
        });
    }
    Ok(forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasmem_sim::SimTime;

    fn ev(us: u64, seq: u64, ctr: Option<u64>, req: Option<u64>, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_micros(us),
            seq,
            container: ctr,
            request: req,
            kind,
        }
    }

    /// A cold invocation with a recall stall: arrive 0, launch 0→700,
    /// init 700→1000, stall 1000→1250, exec 1250→2000.
    fn cold_stream() -> Vec<TraceEvent> {
        vec![
            ev(
                0,
                0,
                None,
                Some(4),
                EventKind::RequestArrive { function: 2 },
            ),
            ev(
                0,
                1,
                Some(9),
                Some(4),
                EventKind::ContainerLaunch { function: 2 },
            ),
            ev(700, 2, Some(9), None, EventKind::RuntimeLoaded),
            ev(1000, 3, Some(9), None, EventKind::InitDone),
            ev(
                1000,
                4,
                Some(9),
                Some(4),
                EventKind::ExecStart { cold: true },
            ),
            ev(
                1000,
                5,
                Some(9),
                Some(4),
                EventKind::ExecStall {
                    cause: StallCause::RecallStall,
                    us: 250,
                },
            ),
            ev(
                2000,
                6,
                Some(9),
                Some(4),
                EventKind::ExecEnd {
                    latency_us: 2000,
                    faults: 3,
                },
            ),
        ]
    }

    #[test]
    fn reconstructs_a_cold_invocation_tree() {
        let spans = build_spans(&cold_stream());
        assert_eq!(spans.len(), 1);
        let inv = &spans[0];
        assert_eq!(inv.request, 4);
        assert_eq!(inv.container, Some(9));
        assert_eq!(inv.function, Some(2));
        assert!(inv.cold);
        assert_eq!(inv.latency_us, 2000);
        assert!(inv.conserves(), "{inv:?}");
        let kinds: Vec<(&str, u64)> = inv
            .children
            .iter()
            .map(|s| (s.kind.name(), s.duration_us()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("launch", 700),
                ("init", 300),
                ("recall_stall", 250),
                ("exec", 750),
            ]
        );
        assert_eq!(
            inv.blame(),
            vec![("cold_start", 1000), ("recall_stall", 250), ("exec", 750)]
        );
        assert_eq!(inv.critical_path()[0].kind, SpanKind::Exec);
    }

    #[test]
    fn warm_invocation_is_exec_only() {
        let events = vec![
            ev(
                500,
                0,
                None,
                Some(1),
                EventKind::RequestArrive { function: 0 },
            ),
            ev(
                500,
                1,
                Some(3),
                Some(1),
                EventKind::ExecStart { cold: false },
            ),
            ev(
                900,
                2,
                Some(3),
                Some(1),
                EventKind::ExecEnd {
                    latency_us: 400,
                    faults: 0,
                },
            ),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 1);
        let inv = &spans[0];
        assert!(!inv.cold);
        assert!(inv.conserves());
        assert_eq!(inv.children.len(), 1);
        assert_eq!(inv.children[0].kind, SpanKind::Exec);
        assert_eq!(inv.children[0].duration_us(), 400);
    }

    #[test]
    fn incomplete_invocations_are_dropped() {
        let mut events = cold_stream();
        events.pop(); // drop the ExecEnd
        assert!(build_spans(&events).is_empty());
    }

    #[test]
    fn jsonl_roundtrip_matches_typed_path() {
        let events = cold_stream();
        let jsonl: String = events
            .iter()
            .map(|e| e.jsonl_line(Some(7)))
            .collect::<Vec<_>>()
            .join("\n");
        let forest = spans_from_jsonl(&jsonl).unwrap();
        assert_eq!(forest.cells.len(), 1);
        assert_eq!(forest.cells[0].cell, 7);
        assert_eq!(forest.cells[0].invocations, build_spans(&events));
    }

    #[test]
    fn malformed_jsonl_is_an_error() {
        assert!(spans_from_jsonl("not json").is_err());
        let bad_cause = "{\"t\":0,\"seq\":0,\"kind\":\"exec_stall\",\"req\":1,\
                         \"cause\":\"gremlins\",\"us\":5}";
        assert!(spans_from_jsonl(bad_cause)
            .unwrap_err()
            .contains("gremlins"));
    }

    proptest::proptest! {
        // Span reconstruction is a function of the `(sim_time, seq)`
        // total order: shuffling the arrival order of the same events
        // yields the identical span forest.
        #[test]
        fn prop_permutation_of_arrival_is_invariant(
            swaps in proptest::collection::vec((0usize..64, 0usize..64), 0..48),
            lens in proptest::collection::vec((1u64..2_000, 0u64..1_500, 0u64..800), 1..8)
        ) {
            // Build a few invocations back to back, one per container.
            let mut events = Vec::new();
            let mut seq = 0u64;
            let mut t = 0u64;
            for (i, &(exec, cold_us, stall)) in lens.iter().enumerate() {
                let req = Some(i as u64);
                let ctr = Some(i as u64);
                let mut push = |t: u64, ctr, req, kind| {
                    events.push(ev(t, seq, ctr, req, kind));
                    seq += 1;
                };
                push(t, None, req, EventKind::RequestArrive { function: 0 });
                let cold = cold_us > 0;
                if cold {
                    push(t, ctr, req, EventKind::ContainerLaunch { function: 0 });
                    push(t + cold_us / 2, ctr, None, EventKind::RuntimeLoaded);
                    push(t + cold_us, ctr, None, EventKind::InitDone);
                }
                let exec_start = t + cold_us;
                push(exec_start, ctr, req, EventKind::ExecStart { cold });
                if stall > 0 {
                    push(
                        exec_start,
                        ctr,
                        req,
                        EventKind::ExecStall { cause: StallCause::RecallStall, us: stall },
                    );
                }
                let end = exec_start + stall + exec;
                push(
                    end,
                    ctr,
                    req,
                    EventKind::ExecEnd { latency_us: end - t, faults: 0 },
                );
                t = end + 10;
            }

            let reference = build_spans(&events);
            proptest::prop_assert_eq!(reference.len(), lens.len());
            for inv in &reference {
                proptest::prop_assert!(inv.conserves(), "{:?}", inv);
            }

            let mut shuffled = events.clone();
            for &(a, b) in &swaps {
                let n = shuffled.len();
                shuffled.swap(a % n, b % n);
            }
            proptest::prop_assert_eq!(build_spans(&shuffled), reference);
        }
    }
}
