//! Per-container timeline reconstruction from a JSONL trace.
//!
//! This is the analysis half of the `trace_summary` bin: it parses the
//! JSONL lines the harness wrote, groups them by `(cell, container)`,
//! and folds each group into a [`ContainerTimeline`] — when the
//! container launched, how long init took, how many executions and
//! faults it served, what it offloaded and recalled — plus per-cell
//! pool totals. Everything here operates on the serialized trace, so
//! it doubles as a schema check for the JSONL writer.

use crate::json::{self, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One container's reconstructed lifecycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContainerTimeline {
    /// Container id.
    pub container: u64,
    /// Function index served, when a launch event was seen.
    pub function: Option<u64>,
    /// Launch timestamp (simulated microseconds).
    pub launched_us: Option<u64>,
    /// Runtime-loaded timestamp.
    pub runtime_loaded_us: Option<u64>,
    /// Init-done timestamp.
    pub init_done_us: Option<u64>,
    /// Retire timestamp.
    pub retired_us: Option<u64>,
    /// Executions observed.
    pub execs: u64,
    /// Executions that were cold starts.
    pub cold_execs: u64,
    /// Demand faults summed over executions.
    pub faults: u64,
    /// Pages offloaded from this container.
    pub offload_pages: u64,
    /// Pages demand-paged back in.
    pub demand_pages: u64,
    /// Pages prefetched back in.
    pub prefetch_pages: u64,
    /// Whether an injected crash killed it.
    pub crashed: bool,
    /// Request ids served, in execution order (feeds the
    /// `--invocation` filter).
    pub requests: Vec<u64>,
}

/// Totals for one grid cell.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellSummary {
    /// Cell index.
    pub cell: u64,
    /// `trace/bench/config/policy` label from the cell-start event.
    pub label: String,
    /// Events observed for this cell.
    pub events: u64,
    /// Requests completed (from the cell-end event).
    pub requests: u64,
    /// Simulated seconds covered (from the cell-end event).
    pub sim_secs: f64,
    /// Bytes paged out to the pool.
    pub pool_bytes_out: u64,
    /// Bytes paged in from the pool.
    pub pool_bytes_in: u64,
    /// Recall retries observed.
    pub recall_retries: u64,
    /// Recalls that exhausted their budget.
    pub recalls_gave_up: u64,
    /// Breaker open transitions.
    pub breaker_opens: u64,
    /// Container timelines, ordered by container id.
    pub containers: Vec<ContainerTimeline>,
}

/// A parsed trace: one summary per cell, in cell order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Per-cell summaries.
    pub cells: Vec<CellSummary>,
}

fn num(doc: &JsonValue, key: &str) -> Option<u64> {
    doc.get(key).and_then(JsonValue::as_num).map(|n| n as u64)
}

fn text<'a>(doc: &'a JsonValue, key: &str) -> &'a str {
    doc.get(key).and_then(JsonValue::as_str).unwrap_or("")
}

/// Parses a JSONL trace into per-cell, per-container summaries.
/// Malformed lines are an error (the writer never emits them).
pub fn summarize_jsonl(input: &str) -> Result<TraceSummary, String> {
    struct CellState {
        summary: CellSummary,
        containers: BTreeMap<u64, ContainerTimeline>,
    }
    let mut cells: BTreeMap<u64, CellState> = BTreeMap::new();

    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let cell = num(&doc, "cell").unwrap_or(0);
        let state = cells.entry(cell).or_insert_with(|| CellState {
            summary: CellSummary {
                cell,
                ..CellSummary::default()
            },
            containers: BTreeMap::new(),
        });
        state.summary.events += 1;
        let t = num(&doc, "t").unwrap_or(0);
        let ctr = num(&doc, "ctr");
        let timeline = ctr.map(|c| {
            state
                .containers
                .entry(c)
                .or_insert_with(|| ContainerTimeline {
                    container: c,
                    ..ContainerTimeline::default()
                })
        });
        match text(&doc, "kind") {
            "cell_start" => {
                state.summary.label = format!(
                    "{}/{}/{}/{}",
                    text(&doc, "trace"),
                    text(&doc, "bench"),
                    text(&doc, "config"),
                    text(&doc, "policy")
                );
            }
            "cell_end" => {
                state.summary.requests = num(&doc, "requests").unwrap_or(0);
                state.summary.sim_secs = doc
                    .get("sim_secs")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0);
            }
            "container_launch" => {
                if let Some(tl) = timeline {
                    tl.function = num(&doc, "function");
                    tl.launched_us = Some(t);
                }
            }
            "runtime_loaded" => {
                if let Some(tl) = timeline {
                    tl.runtime_loaded_us = Some(t);
                }
            }
            "init_done" => {
                if let Some(tl) = timeline {
                    tl.init_done_us = Some(t);
                }
            }
            "exec_start" => {
                if let Some(tl) = timeline {
                    tl.execs += 1;
                    if doc.get("cold") == Some(&JsonValue::Bool(true)) {
                        tl.cold_execs += 1;
                    }
                    if let Some(req) = num(&doc, "req") {
                        tl.requests.push(req);
                    }
                }
            }
            "exec_end" => {
                if let Some(tl) = timeline {
                    tl.faults += num(&doc, "faults").unwrap_or(0);
                }
            }
            "container_retire" => {
                if let Some(tl) = timeline {
                    tl.retired_us = Some(t);
                }
            }
            "container_crash" => {
                if let Some(tl) = timeline {
                    tl.crashed = true;
                }
            }
            "mem_offload" => {
                if let Some(tl) = timeline {
                    tl.offload_pages += num(&doc, "pages").unwrap_or(0);
                }
            }
            "mem_page_in" => {
                if let Some(tl) = timeline {
                    let pages = num(&doc, "pages").unwrap_or(0);
                    if doc.get("demand") == Some(&JsonValue::Bool(true)) {
                        tl.demand_pages += pages;
                    } else {
                        tl.prefetch_pages += pages;
                    }
                }
            }
            "pool_page_out" => {
                state.summary.pool_bytes_out += num(&doc, "bytes").unwrap_or(0);
            }
            "pool_page_in" => {
                state.summary.pool_bytes_in += num(&doc, "bytes").unwrap_or(0);
            }
            "recall_retry" => state.summary.recall_retries += 1,
            "recall_gave_up" => state.summary.recalls_gave_up += 1,
            "breaker_open" => state.summary.breaker_opens += 1,
            _ => {}
        }
    }

    let mut out = TraceSummary::default();
    for (_, state) in cells {
        let mut summary = state.summary;
        summary.containers = state.containers.into_values().collect();
        out.cells.push(summary);
    }
    Ok(out)
}

impl TraceSummary {
    /// Narrows the summary to one container id: cells that never saw
    /// the container are dropped, and surviving cells keep only that
    /// container's timeline. Cell-level totals (events, pool bytes,
    /// retries...) are left untouched — they describe the whole cell
    /// and filtering them would misattribute shared traffic.
    pub fn filter_container(&mut self, container: u64) {
        self.cells.retain_mut(|cell| {
            cell.containers.retain(|tl| tl.container == container);
            !cell.containers.is_empty()
        });
    }

    /// Narrows the summary to the containers that served one request
    /// id (the request index within each cell). Mirrors
    /// [`TraceSummary::filter_container`]: cells that never executed
    /// the request are dropped, cell-level totals are untouched.
    pub fn filter_invocation(&mut self, request: u64) {
        self.cells.retain_mut(|cell| {
            cell.containers.retain(|tl| tl.requests.contains(&request));
            !cell.containers.is_empty()
        });
    }
}

fn fmt_opt_ms(us: Option<u64>) -> String {
    match us {
        Some(us) => format!("{:.1}", us as f64 / 1000.0),
        None => "-".to_string(),
    }
}

/// Renders the summary as the fixed-width text table the
/// `trace_summary` bin prints.
pub fn render_text(summary: &TraceSummary) -> String {
    let mut out = String::new();
    for cell in &summary.cells {
        let _ = writeln!(
            out,
            "cell {} [{}]: {} events, {} requests, {:.1} sim-s",
            cell.cell, cell.label, cell.events, cell.requests, cell.sim_secs
        );
        let _ = writeln!(
            out,
            "  pool: {} B out, {} B in, {} retries, {} gave up, {} breaker opens",
            cell.pool_bytes_out,
            cell.pool_bytes_in,
            cell.recall_retries,
            cell.recalls_gave_up,
            cell.breaker_opens
        );
        if !cell.containers.is_empty() {
            let _ = writeln!(
                out,
                "  {:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6} {:>7} {:>8} {:>8} {:>8}",
                "ctr",
                "fn",
                "launch_ms",
                "loaded_ms",
                "init_ms",
                "retire_ms",
                "execs",
                "cold",
                "faults",
                "offload",
                "demand",
                "prefetch"
            );
        }
        for tl in &cell.containers {
            let _ = writeln!(
                out,
                "  {:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>6} {:>6} {:>7} {:>8} {:>8} {:>8}{}",
                tl.container,
                tl.function.map_or("-".to_string(), |f| f.to_string()),
                fmt_opt_ms(tl.launched_us),
                fmt_opt_ms(tl.runtime_loaded_us),
                fmt_opt_ms(tl.init_done_us),
                fmt_opt_ms(tl.retired_us),
                tl.execs,
                tl.cold_execs,
                tl.faults,
                tl.offload_pages,
                tl.demand_pages,
                tl.prefetch_pages,
                if tl.crashed { "  CRASHED" } else { "" }
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent};
    use faasmem_sim::SimTime;

    fn line(us: u64, seq: u64, ctr: Option<u64>, req: Option<u64>, kind: EventKind) -> String {
        TraceEvent {
            time: SimTime::from_micros(us),
            seq,
            container: ctr,
            request: req,
            kind,
        }
        .jsonl_line(Some(0))
    }

    #[test]
    fn reconstructs_a_container_timeline() {
        let jsonl = [
            line(
                0,
                0,
                None,
                None,
                EventKind::CellStart {
                    trace: "azure".into(),
                    bench: "image".into(),
                    config: "default".into(),
                    policy: "faasmem".into(),
                    seed: 42,
                },
            ),
            line(
                0,
                1,
                Some(0),
                Some(0),
                EventKind::ContainerLaunch { function: 2 },
            ),
            line(1500, 2, Some(0), Some(0), EventKind::RuntimeLoaded),
            line(2500, 3, Some(0), Some(0), EventKind::InitDone),
            line(
                2500,
                4,
                Some(0),
                Some(0),
                EventKind::ExecStart { cold: true },
            ),
            line(2600, 5, Some(0), None, EventKind::MemOffload { pages: 8 }),
            line(
                2700,
                6,
                None,
                None,
                EventKind::PoolPageOut {
                    bytes: 32768,
                    stall_us: 12,
                    queued_us: 0,
                },
            ),
            line(
                3000,
                7,
                Some(0),
                Some(0),
                EventKind::ExecEnd {
                    latency_us: 3000,
                    faults: 2,
                },
            ),
            line(3000, 8, Some(0), None, EventKind::KeepAliveEnter),
            line(
                4000,
                9,
                Some(0),
                Some(1),
                EventKind::ExecStart { cold: false },
            ),
            line(
                4100,
                10,
                Some(0),
                None,
                EventKind::MemPageIn {
                    pages: 3,
                    demand: true,
                },
            ),
            line(
                4500,
                11,
                Some(0),
                Some(1),
                EventKind::ExecEnd {
                    latency_us: 500,
                    faults: 3,
                },
            ),
            line(
                9000,
                12,
                Some(0),
                None,
                EventKind::ContainerRetire { requests: 2 },
            ),
            line(
                9500,
                13,
                None,
                None,
                EventKind::CellEnd {
                    requests: 2,
                    sim_secs: 9.5,
                },
            ),
        ]
        .join("\n");

        let summary = summarize_jsonl(&jsonl).unwrap();
        assert_eq!(summary.cells.len(), 1);
        let cell = &summary.cells[0];
        assert_eq!(cell.label, "azure/image/default/faasmem");
        assert_eq!(cell.events, 14);
        assert_eq!(cell.requests, 2);
        assert_eq!(cell.pool_bytes_out, 32768);
        assert_eq!(cell.containers.len(), 1);
        let tl = &cell.containers[0];
        assert_eq!(tl.function, Some(2));
        assert_eq!(tl.launched_us, Some(0));
        assert_eq!(tl.runtime_loaded_us, Some(1500));
        assert_eq!(tl.init_done_us, Some(2500));
        assert_eq!(tl.retired_us, Some(9000));
        assert_eq!(tl.execs, 2);
        assert_eq!(tl.cold_execs, 1);
        assert_eq!(tl.faults, 5);
        assert_eq!(tl.offload_pages, 8);
        assert_eq!(tl.demand_pages, 3);
        assert_eq!(tl.prefetch_pages, 0);
        assert!(!tl.crashed);

        let text = render_text(&summary);
        assert!(text.contains("cell 0 [azure/image/default/faasmem]"));
        assert!(text.contains("32768 B out"));
    }

    #[test]
    fn filter_container_keeps_only_matching_timelines() {
        let jsonl = [
            line(
                0,
                0,
                Some(0),
                None,
                EventKind::ContainerLaunch { function: 0 },
            ),
            line(
                10,
                1,
                Some(1),
                None,
                EventKind::ContainerLaunch { function: 1 },
            ),
        ]
        .join("\n");
        let mut summary = summarize_jsonl(&jsonl).unwrap();
        assert_eq!(summary.cells[0].containers.len(), 2);

        let mut only_one = summary.clone();
        only_one.filter_container(1);
        assert_eq!(only_one.cells.len(), 1);
        assert_eq!(only_one.cells[0].containers.len(), 1);
        assert_eq!(only_one.cells[0].containers[0].container, 1);
        // Cell totals describe the whole cell and survive the filter.
        assert_eq!(only_one.cells[0].events, 2);

        // A container that never appears empties the summary.
        summary.filter_container(99);
        assert!(summary.cells.is_empty());
    }

    #[test]
    fn filter_invocation_keeps_the_serving_container() {
        let jsonl = [
            line(0, 0, Some(0), Some(0), EventKind::ExecStart { cold: true }),
            line(
                10,
                1,
                Some(1),
                Some(7),
                EventKind::ExecStart { cold: false },
            ),
        ]
        .join("\n");
        let summary = summarize_jsonl(&jsonl).unwrap();
        assert_eq!(summary.cells[0].containers.len(), 2);

        let mut only_seven = summary.clone();
        only_seven.filter_invocation(7);
        assert_eq!(only_seven.cells.len(), 1);
        assert_eq!(only_seven.cells[0].containers.len(), 1);
        assert_eq!(only_seven.cells[0].containers[0].container, 1);
        assert_eq!(only_seven.cells[0].containers[0].requests, vec![7]);
        // Cell totals describe the whole cell and survive the filter.
        assert_eq!(only_seven.cells[0].events, 2);

        // A request id that never ran empties the summary.
        let mut none = summary;
        none.filter_invocation(99);
        assert!(none.cells.is_empty());
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let err = summarize_jsonl("{\"t\":0}\nnot json").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn empty_input_yields_empty_summary() {
        assert_eq!(summarize_jsonl("").unwrap(), TraceSummary::default());
        assert_eq!(summarize_jsonl("\n\n").unwrap(), TraceSummary::default());
    }
}
