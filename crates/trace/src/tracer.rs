//! The [`Tracer`] handle and the pluggable [`TraceSink`] family.
//!
//! A `Tracer` is a cheap clonable handle shared by every emitter in a
//! cell (platform, page tables, remote pool). The disabled tracer is a
//! `None` — cloning it is a register copy, [`Tracer::wants`] is one
//! branch, and no allocation ever happens — so simulation code can
//! call into it unconditionally. An enabled tracer stamps each event
//! with the current simulated time and a strictly monotone sequence
//! number, then hands it to the configured sink.
//!
//! Determinism rules:
//! - the stamp is `(sim_time, seq)`; wall-clock never enters an event;
//! - `seq` increments per accepted event, so the pair is a total order
//!   over a cell's events no matter how many emitters interleave;
//! - a tracer is confined to the thread running its cell (`Rc`), and
//!   only drained `Vec<TraceEvent>`s cross thread boundaries, so the
//!   event stream for a cell is independent of `--jobs`.

use crate::event::{EventKind, LayerMask, TraceEvent, TraceLayer};
use faasmem_sim::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

/// Destination for stamped events.
pub trait TraceSink {
    /// Accepts one stamped event.
    fn record(&mut self, event: TraceEvent);

    /// Hands back buffered events, if this sink buffers any. Streaming
    /// sinks return an empty vec.
    fn drain(&mut self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Drops every event. Provided for API completeness; the usual
/// zero-cost "off" state is [`Tracer::disabled`], which never reaches
/// a sink at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// Buffers every event in memory, unbounded. The harness uses one per
/// cell and drains it into the cell outcome.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Vec<TraceEvent>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }
}

impl TraceSink for BufferSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

/// A bounded ring: keeps the most recent `capacity` events and counts
/// the rest as dropped. Useful for "flight recorder" introspection of
/// long runs where only the tail matters.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events evicted so far to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

/// Streams each event as one JSONL line to a writer. Write errors are
/// deliberately swallowed (tracing must never alter simulation
/// control flow); callers who care should flush and check the writer
/// after the run.
pub struct JsonlSink<W: Write> {
    cell: Option<u64>,
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// A streaming sink tagging each line with `cell` (when given).
    pub fn new(cell: Option<u64>, writer: W) -> JsonlSink<W> {
        JsonlSink { cell, writer }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        let line = event.jsonl_line(self.cell);
        let _ = writeln!(self.writer, "{line}");
    }
}

struct TracerInner {
    now: SimTime,
    seq: u64,
    mask: LayerMask,
    sink: Box<dyn TraceSink>,
}

/// Shared emission handle. Clones share one clock, one sequence
/// counter and one sink, which is exactly what makes `(sim_time, seq)`
/// a total order across interleaved emitters.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TracerInner>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => {
                let inner = inner.borrow();
                f.debug_struct("Tracer")
                    .field("now", &inner.now)
                    .field("seq", &inner.seq)
                    .field("mask", &inner.mask)
                    .finish_non_exhaustive()
            }
        }
    }
}

impl Tracer {
    /// The zero-cost disabled tracer (the default everywhere).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer buffering events in memory ([`BufferSink`]).
    pub fn recording(mask: LayerMask) -> Tracer {
        Tracer::with_sink(mask, Box::new(BufferSink::new()))
    }

    /// An enabled tracer feeding `sink`, filtered to `mask`.
    pub fn with_sink(mask: LayerMask, sink: Box<dyn TraceSink>) -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TracerInner {
                now: SimTime::ZERO,
                seq: 0,
                mask,
                sink,
            }))),
        }
    }

    /// Whether any events can be emitted at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether `layer` events would be accepted. Emitters use this to
    /// skip payload computation when tracing is off or filtered.
    pub fn wants(&self, layer: TraceLayer) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => inner.borrow().mask.contains(layer),
        }
    }

    /// Advances the stamp clock. The platform calls this once per
    /// dispatched simulation event; emitters without clock access
    /// (page tables, the pool) inherit the stamp. No-op when disabled.
    pub fn set_now(&self, now: SimTime) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            debug_assert!(
                now >= inner.now,
                "trace clock moved backwards: {:?} -> {now:?}",
                inner.now
            );
            inner.now = now;
        }
    }

    /// The current stamp clock (ZERO when disabled).
    pub fn now(&self) -> SimTime {
        match &self.inner {
            None => SimTime::ZERO,
            Some(inner) => inner.borrow().now,
        }
    }

    /// Stamps and records one event, if the tracer is enabled and the
    /// kind's layer passes the filter.
    pub fn emit(&self, container: Option<u64>, request: Option<u64>, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let mut inner = inner.borrow_mut();
            if !inner.mask.contains(kind.layer()) {
                return;
            }
            let event = TraceEvent {
                time: inner.now,
                seq: inner.seq,
                container,
                request,
                kind,
            };
            inner.seq += 1;
            inner.sink.record(event);
        }
    }

    /// Drains buffered events from the sink (empty for streaming
    /// sinks or when disabled).
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.borrow_mut().sink.drain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kinds_by_layer(layer: TraceLayer) -> EventKind {
        match layer {
            TraceLayer::Harness => EventKind::CellEnd {
                requests: 0,
                sim_secs: 0.0,
            },
            TraceLayer::Container => EventKind::RuntimeLoaded,
            TraceLayer::Memory => EventKind::MemOffload { pages: 1 },
            TraceLayer::Pool => EventKind::BreakerOpen,
        }
    }

    #[test]
    fn disabled_tracer_accepts_everything_silently() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        for layer in TraceLayer::ALL {
            assert!(!tracer.wants(layer));
            tracer.emit(None, None, kinds_by_layer(layer));
        }
        tracer.set_now(SimTime::from_secs(5));
        assert_eq!(tracer.now(), SimTime::ZERO);
        assert!(tracer.take_events().is_empty());
    }

    #[test]
    fn clones_share_clock_and_sequence() {
        let tracer = Tracer::recording(LayerMask::ALL);
        let table_view = tracer.clone();
        let pool_view = tracer.clone();
        tracer.set_now(SimTime::from_micros(10));
        table_view.emit(Some(1), None, EventKind::MemOffload { pages: 4 });
        pool_view.emit(
            Some(1),
            None,
            EventKind::PoolPageOut {
                bytes: 16384,
                stall_us: 3,
                queued_us: 0,
            },
        );
        tracer.set_now(SimTime::from_micros(20));
        tracer.emit(None, Some(7), EventKind::RuntimeLoaded);
        let events = tracer.take_events();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(events[0].time, SimTime::from_micros(10));
        assert_eq!(events[1].time, SimTime::from_micros(10));
        assert_eq!(events[2].time, SimTime::from_micros(20));
        // Drained once; the buffer is now empty.
        assert!(tracer.take_events().is_empty());
    }

    #[test]
    fn layer_filter_drops_without_consuming_sequence_numbers() {
        let tracer = Tracer::recording(LayerMask::only(TraceLayer::Pool));
        assert!(tracer.wants(TraceLayer::Pool));
        assert!(!tracer.wants(TraceLayer::Memory));
        tracer.emit(None, None, EventKind::MemOffload { pages: 9 });
        tracer.emit(None, None, EventKind::BreakerOpen);
        tracer.emit(
            None,
            None,
            EventKind::AccessScan {
                live: 1,
                accessed: 1,
            },
        );
        tracer.emit(None, None, EventKind::BreakerClose);
        let events = tracer.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::BreakerOpen);
        assert_eq!(events[1].kind, EventKind::BreakerClose);
        // Filtered events must not burn sequence numbers, or the
        // stream would betray the filter setting.
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn ring_sink_keeps_the_tail() {
        let tracer = Tracer::with_sink(LayerMask::ALL, Box::new(RingSink::new(2)));
        for i in 0..5u64 {
            tracer.set_now(SimTime::from_micros(i));
            tracer.emit(None, None, EventKind::MemOffload { pages: i });
        }
        let events = tracer.take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::MemOffload { pages: 3 });
        assert_eq!(events[1].kind, EventKind::MemOffload { pages: 4 });
    }

    #[test]
    fn ring_sink_counts_drops() {
        let mut ring = RingSink::new(1);
        for seq in 0..3 {
            ring.record(TraceEvent {
                time: SimTime::ZERO,
                seq,
                container: None,
                request: None,
                kind: EventKind::BreakerOpen,
            });
        }
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn jsonl_sink_streams_lines() {
        let sink = JsonlSink::new(Some(3), Vec::new());
        let tracer = Tracer::with_sink(LayerMask::ALL, Box::new(sink));
        tracer.set_now(SimTime::from_micros(42));
        tracer.emit(Some(0), None, EventKind::PoolDiscard { bytes: 4096 });
        tracer.emit(None, None, EventKind::BreakerOpen);
        // Streaming sinks do not buffer.
        assert!(tracer.take_events().is_empty());
        drop(tracer);
        // The writer is owned by the sink; rebuild a standalone sink to
        // inspect bytes instead.
        let mut sink = JsonlSink::new(Some(3), Vec::new());
        sink.record(TraceEvent {
            time: SimTime::from_micros(42),
            seq: 0,
            container: Some(0),
            request: None,
            kind: EventKind::PoolDiscard { bytes: 4096 },
        });
        let bytes = sink.into_inner();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            "{\"cell\":3,\"t\":42,\"seq\":0,\"layer\":\"pool\",\"kind\":\"pool_discard\",\"ctr\":0,\"bytes\":4096}\n"
        );
    }

    proptest! {
        // Under any interleaving of emitters (modelled as a sequence of
        // (emitter, clock-advance) choices), the stamped `(sim_time, seq)`
        // pairs form a strict total order: no duplicates, and sorting by
        // the pair reproduces emission order exactly.
        #[test]
        fn stamp_order_is_total_under_interleaving(
            steps in proptest::collection::vec((0u8..4, 0u64..3), 1..200)
        ) {
            let tracer = Tracer::recording(LayerMask::ALL);
            let emitters: Vec<Tracer> = (0..4).map(|_| tracer.clone()).collect();
            let mut now = 0u64;
            for &(who, advance) in &steps {
                now += advance; // clock is monotone but often stalls
                tracer.set_now(SimTime::from_micros(now));
                let kind = kinds_by_layer(TraceLayer::ALL[who as usize]);
                emitters[who as usize].emit(Some(u64::from(who)), None, kind);
            }
            let events = tracer.take_events();
            prop_assert_eq!(events.len(), steps.len());
            let keys: Vec<(u64, u64)> = events.iter().map(TraceEvent::key).collect();
            // Strictly increasing in emission order: total order with no ties.
            for pair in keys.windows(2) {
                prop_assert!(pair[0] < pair[1], "not strictly ordered: {:?}", pair);
            }
            let mut sorted = keys.clone();
            sorted.sort();
            sorted.dedup();
            prop_assert_eq!(sorted, keys);
        }
    }
}
