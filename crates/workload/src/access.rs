//! Per-request page-access planning.
//!
//! Given a benchmark's [`InitAccess`] model and the page counts of its
//! segments, [`RequestAccess::plan`] decides which pages one request
//! touches. The plans reproduce the access-scan shapes of the paper's
//! Figures 6 (BERT: a stable hot core plus input-dependent extras), 8
//! (runtime pages barely recalled after the first request) and 9 (Web:
//! Pareto-popular cached pages).

use faasmem_sim::SimRng;

/// How requests touch a function's init segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitAccess {
    /// The same leading fraction of init pages is touched every request
    /// (imports, model weights).
    FixedHot {
        /// Fraction of init pages in the always-hot prefix, `[0, 1]`.
        hot_fraction: f64,
    },
    /// A fixed hot prefix plus a per-request random sample of the rest —
    /// BERT's "different requests access different nodes" behaviour.
    HotPlusRandom {
        /// Fraction of init pages in the always-hot prefix.
        hot_fraction: f64,
        /// Fraction of init pages drawn uniformly at random per request.
        random_fraction: f64,
    },
    /// Pages are selected by Pareto popularity: a few pages are touched
    /// by almost every request, most almost never (fine-grained caches).
    ParetoPages {
        /// Pareto shape; smaller = heavier tail.
        alpha: f64,
        /// Fraction of init pages touched per request.
        per_request_fraction: f64,
    },
    /// The init segment is a cache of `objects` equally sized objects
    /// (rendered HTML pages); each request touches `per_request` whole
    /// objects chosen by Pareto popularity. This is Web's Fig 9 pattern:
    /// every scan column shows several contiguous bars, and rarely
    /// requested objects keep surfacing for many requests — which is why
    /// Web needs a large request window (§5.2).
    ParetoObjects {
        /// Pareto shape; smaller = heavier tail (more distinct objects).
        alpha: f64,
        /// Number of cached objects the init segment holds.
        objects: u32,
        /// Objects touched per request.
        per_request: u32,
    },
    /// Every request walks the whole init segment (Graph's BFS).
    FullTraversal,
}

/// A set of segment-relative page indexes, kept as a range when dense.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessSet {
    /// The contiguous index range `[start, end)`.
    Range(u32, u32),
    /// An explicit, sorted, de-duplicated index list.
    Sparse(Vec<u32>),
}

impl AccessSet {
    /// An empty set.
    pub fn empty() -> Self {
        AccessSet::Range(0, 0)
    }

    /// Number of pages in the set.
    pub fn len(&self) -> usize {
        match self {
            AccessSet::Range(s, e) => (e - s) as usize,
            AccessSet::Sparse(v) => v.len(),
        }
    }

    /// `true` when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the page indexes.
    pub fn iter(&self) -> Box<dyn Iterator<Item = u32> + '_> {
        match self {
            AccessSet::Range(s, e) => Box::new(*s..*e),
            AccessSet::Sparse(v) => Box::new(v.iter().copied()),
        }
    }

    /// `true` if `index` is in the set.
    pub fn contains(&self, index: u32) -> bool {
        match self {
            AccessSet::Range(s, e) => index >= *s && index < *e,
            AccessSet::Sparse(v) => v.binary_search(&index).is_ok(),
        }
    }
}

/// The pages one request touches, expressed segment-relatively.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestAccess {
    /// Runtime-segment pages touched (the action proxy's working set).
    pub runtime: AccessSet,
    /// Init-segment pages touched.
    pub init: AccessSet,
    /// Execution-segment pages allocated, touched and freed.
    pub exec_pages: u32,
}

impl RequestAccess {
    /// Plans the page accesses of one request.
    ///
    /// * `model` — the benchmark's init-access behaviour.
    /// * `runtime_hot_pages` — size of the runtime working set in pages.
    /// * `init_pages` — total init-segment pages.
    /// * `exec_pages` — execution-segment pages this request allocates.
    /// * `rng` — deterministic randomness for the stochastic models.
    pub fn plan(
        model: InitAccess,
        runtime_hot_pages: u32,
        init_pages: u32,
        exec_pages: u32,
        rng: &mut SimRng,
    ) -> RequestAccess {
        Self::plan_with_rare_runtime(
            model,
            runtime_hot_pages,
            runtime_hot_pages,
            0.0,
            init_pages,
            exec_pages,
            rng,
        )
    }

    /// Like [`RequestAccess::plan`], but with probability
    /// `rare_runtime_prob` the request additionally touches one random
    /// page from the *cold* part of the runtime segment
    /// (`[runtime_hot_pages, runtime_total_pages)`). This reproduces the
    /// paper's Fig 8 observation that a handful of Runtime-Pucket pages
    /// are recalled after the reactive offload — rarely, but not never.
    pub fn plan_with_rare_runtime(
        model: InitAccess,
        runtime_hot_pages: u32,
        runtime_total_pages: u32,
        rare_runtime_prob: f64,
        init_pages: u32,
        exec_pages: u32,
        rng: &mut SimRng,
    ) -> RequestAccess {
        let init = Self::plan_init(model, init_pages, rng);
        let runtime = if runtime_total_pages > runtime_hot_pages && rng.chance(rare_runtime_prob) {
            let cold =
                rng.range(u64::from(runtime_hot_pages), u64::from(runtime_total_pages)) as u32;
            let mut v: Vec<u32> = (0..runtime_hot_pages).collect();
            v.push(cold);
            AccessSet::Sparse(v)
        } else {
            AccessSet::Range(0, runtime_hot_pages)
        };
        RequestAccess {
            runtime,
            init,
            exec_pages,
        }
    }

    fn plan_init(model: InitAccess, init_pages: u32, rng: &mut SimRng) -> AccessSet {
        if init_pages == 0 {
            return AccessSet::empty();
        }
        match model {
            InitAccess::FullTraversal => AccessSet::Range(0, init_pages),
            InitAccess::FixedHot { hot_fraction } => {
                let hot = fraction_of(init_pages, hot_fraction);
                AccessSet::Range(0, hot)
            }
            InitAccess::HotPlusRandom {
                hot_fraction,
                random_fraction,
            } => {
                let hot = fraction_of(init_pages, hot_fraction);
                let extra = fraction_of(init_pages, random_fraction);
                if extra == 0 || hot >= init_pages {
                    return AccessSet::Range(0, hot.min(init_pages));
                }
                let mut indexes: Vec<u32> = (0..hot).collect();
                // Sample without replacement from the cold tail.
                let tail = init_pages - hot;
                let take = extra.min(tail);
                let mut sampled = sample_without_replacement(tail, take, rng);
                for s in sampled.drain(..) {
                    indexes.push(hot + s);
                }
                indexes.sort_unstable();
                indexes.dedup();
                AccessSet::Sparse(indexes)
            }
            InitAccess::ParetoPages {
                alpha,
                per_request_fraction,
            } => {
                let per_request = fraction_of(init_pages, per_request_fraction).max(1);
                let mut indexes = Vec::with_capacity(per_request as usize);
                for _ in 0..per_request {
                    indexes.push(rng.pareto_index(init_pages as usize, alpha) as u32);
                }
                indexes.sort_unstable();
                indexes.dedup();
                AccessSet::Sparse(indexes)
            }
            InitAccess::ParetoObjects {
                alpha,
                objects,
                per_request,
            } => {
                let objects = objects.max(1).min(init_pages.max(1));
                let mut chosen = Vec::with_capacity(per_request as usize);
                for _ in 0..per_request.max(1) {
                    chosen.push(rng.pareto_index(objects as usize, alpha) as u32);
                }
                chosen.sort_unstable();
                chosen.dedup();
                let mut indexes = Vec::new();
                for obj in chosen {
                    let start =
                        (u64::from(obj) * u64::from(init_pages) / u64::from(objects)) as u32;
                    let end =
                        ((u64::from(obj) + 1) * u64::from(init_pages) / u64::from(objects)) as u32;
                    indexes.extend(start..end.max(start + 1).min(init_pages));
                }
                indexes.sort_unstable();
                indexes.dedup();
                AccessSet::Sparse(indexes)
            }
        }
    }
}

fn fraction_of(total: u32, fraction: f64) -> u32 {
    ((total as f64 * fraction).round() as u32).min(total)
}

/// Draws `take` distinct values from `[0, n)` (Floyd's algorithm).
fn sample_without_replacement(n: u32, take: u32, rng: &mut SimRng) -> Vec<u32> {
    debug_assert!(take <= n);
    let mut chosen = std::collections::HashSet::with_capacity(take as usize);
    let mut out = Vec::with_capacity(take as usize);
    for j in (n - take)..n {
        let t = rng.below(u64::from(j) + 1) as u32;
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(99)
    }

    #[test]
    fn access_set_range_semantics() {
        let s = AccessSet::Range(5, 9);
        assert_eq!(s.len(), 4);
        assert!(s.contains(5) && s.contains(8));
        assert!(!s.contains(9) && !s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![5, 6, 7, 8]);
    }

    #[test]
    fn access_set_sparse_semantics() {
        let s = AccessSet::Sparse(vec![1, 4, 7]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(4));
        assert!(!s.contains(5));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
        assert!(AccessSet::empty().is_empty());
    }

    #[test]
    fn full_traversal_touches_everything() {
        let a = RequestAccess::plan(InitAccess::FullTraversal, 10, 1000, 5, &mut rng());
        assert_eq!(a.init.len(), 1000);
        assert_eq!(a.runtime.len(), 10);
        assert_eq!(a.exec_pages, 5);
    }

    #[test]
    fn fixed_hot_is_deterministic_prefix() {
        let mut r = rng();
        let a = RequestAccess::plan(
            InitAccess::FixedHot { hot_fraction: 0.25 },
            0,
            400,
            0,
            &mut r,
        );
        assert_eq!(a.init, AccessSet::Range(0, 100));
        // Same every request regardless of RNG state.
        let b = RequestAccess::plan(
            InitAccess::FixedHot { hot_fraction: 0.25 },
            0,
            400,
            0,
            &mut r,
        );
        assert_eq!(a.init, b.init);
    }

    #[test]
    fn hot_plus_random_has_stable_core_and_varying_tail() {
        let model = InitAccess::HotPlusRandom {
            hot_fraction: 0.4,
            random_fraction: 0.1,
        };
        let mut r = rng();
        let a = RequestAccess::plan(model, 0, 1000, 0, &mut r);
        let b = RequestAccess::plan(model, 0, 1000, 0, &mut r);
        // Core always present.
        for i in 0..400 {
            assert!(a.init.contains(i) && b.init.contains(i));
        }
        // Roughly 40% + 10% of pages touched.
        assert!((450..=500).contains(&a.init.len()));
        // The random tails differ between requests.
        let tail_a: Vec<u32> = a.init.iter().filter(|&i| i >= 400).collect();
        let tail_b: Vec<u32> = b.init.iter().filter(|&i| i >= 400).collect();
        assert_ne!(tail_a, tail_b);
    }

    #[test]
    fn pareto_pages_prefer_popular_prefix() {
        let model = InitAccess::ParetoPages {
            alpha: 1.1,
            per_request_fraction: 0.05,
        };
        let mut r = rng();
        let mut hits = vec![0u32; 1000];
        for _ in 0..200 {
            let a = RequestAccess::plan(model, 0, 1000, 0, &mut r);
            for i in a.init.iter() {
                hits[i as usize] += 1;
            }
        }
        let head: u32 = hits[..100].iter().sum();
        let tail: u32 = hits[900..].iter().sum();
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }

    #[test]
    fn pareto_touches_at_least_one_page() {
        let model = InitAccess::ParetoPages {
            alpha: 1.5,
            per_request_fraction: 0.0001,
        };
        let a = RequestAccess::plan(model, 0, 100, 0, &mut rng());
        assert!(!a.init.is_empty());
    }

    #[test]
    fn zero_init_pages_is_empty_set() {
        for model in [
            InitAccess::FullTraversal,
            InitAccess::FixedHot { hot_fraction: 0.5 },
            InitAccess::HotPlusRandom {
                hot_fraction: 0.5,
                random_fraction: 0.1,
            },
            InitAccess::ParetoPages {
                alpha: 1.0,
                per_request_fraction: 0.1,
            },
            InitAccess::ParetoObjects {
                alpha: 1.0,
                objects: 10,
                per_request: 2,
            },
        ] {
            let a = RequestAccess::plan(model, 4, 0, 2, &mut rng());
            assert!(a.init.is_empty(), "{model:?}");
        }
    }

    #[test]
    fn pareto_objects_touch_whole_contiguous_objects() {
        let model = InitAccess::ParetoObjects {
            alpha: 0.9,
            objects: 10,
            per_request: 3,
        };
        let mut r = rng();
        let a = RequestAccess::plan(model, 0, 1000, 0, &mut r);
        // Each object spans 100 pages; between 1 and 3 distinct objects.
        assert!(a.init.len().is_multiple_of(100), "len {}", a.init.len());
        assert!((100..=300).contains(&a.init.len()));
        // Contiguity within objects: indexes come in full 100-page runs.
        let v: Vec<u32> = a.init.iter().collect();
        for chunk in v.chunks(100) {
            assert_eq!(chunk[99], chunk[0] + 99);
        }
    }

    #[test]
    fn pareto_objects_keep_revealing_new_objects() {
        let model = InitAccess::ParetoObjects {
            alpha: 0.9,
            objects: 100,
            per_request: 3,
        };
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        let mut new_at_request = Vec::new();
        for _ in 0..30 {
            let a = RequestAccess::plan(model, 0, 5000, 0, &mut r);
            let before = seen.len();
            for i in a.init.iter() {
                seen.insert(i);
            }
            new_at_request.push(seen.len() - before);
        }
        // Growth must persist past the first few requests (web's large
        // request window) and eventually slow down.
        let early: usize = new_at_request[..5].iter().sum();
        let late: usize = new_at_request[25..].iter().sum();
        assert!(early > 0 && late < early, "early {early} late {late}");
        assert!(
            new_at_request[5..15].iter().sum::<usize>() > 0,
            "still growing after 5 reqs"
        );
    }

    #[test]
    fn rare_runtime_touch_hits_cold_pages_occasionally() {
        let mut r = rng();
        let mut rare_hits = 0;
        for _ in 0..2000 {
            let a = RequestAccess::plan_with_rare_runtime(
                InitAccess::FullTraversal,
                10,
                100,
                0.01,
                4,
                2,
                &mut r,
            );
            // Hot prefix always present.
            for i in 0..10 {
                assert!(a.runtime.contains(i));
            }
            if a.runtime.len() == 11 {
                rare_hits += 1;
                let cold: Vec<u32> = a.runtime.iter().filter(|&i| i >= 10).collect();
                assert_eq!(cold.len(), 1);
                assert!(cold[0] < 100);
            } else {
                assert_eq!(a.runtime.len(), 10);
            }
        }
        // ~1% of 2000 = ~20; allow wide slack but require "rare, not never".
        assert!((2..=80).contains(&rare_hits), "rare hits {rare_hits}");
    }

    #[test]
    fn rare_runtime_touch_disabled_when_no_cold_pages() {
        let mut r = rng();
        let a = RequestAccess::plan_with_rare_runtime(
            InitAccess::FullTraversal,
            10,
            10,
            1.0,
            0,
            0,
            &mut r,
        );
        assert_eq!(a.runtime, AccessSet::Range(0, 10));
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_in_range() {
        let mut r = rng();
        for _ in 0..50 {
            let v = sample_without_replacement(100, 30, &mut r);
            assert_eq!(v.len(), 30);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), 30);
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn sample_full_population() {
        let mut r = rng();
        let mut v = sample_without_replacement(10, 10, &mut r);
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    proptest::proptest! {
        #[test]
        fn prop_sparse_sets_sorted_deduped(
            hot in 0.0f64..1.0,
            rand_frac in 0.0f64..0.5,
            pages in 1u32..2000,
            seed in 0u64..1000,
        ) {
            let model = InitAccess::HotPlusRandom { hot_fraction: hot, random_fraction: rand_frac };
            let mut r = SimRng::seed_from(seed);
            let a = RequestAccess::plan(model, 0, pages, 0, &mut r);
            if let AccessSet::Sparse(v) = &a.init {
                proptest::prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
                proptest::prop_assert!(v.iter().all(|&i| i < pages));
            }
            proptest::prop_assert!(a.init.len() <= pages as usize);
        }
    }
}
