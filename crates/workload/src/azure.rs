//! Statistical re-synthesis of the Azure Functions 2021 invocation trace.
//!
//! The paper's evaluation replays the *Azure Functions Invocation Trace
//! 2021* (424 functions, 1,980,951 invocations, §2.1). That dataset is not
//! redistributable inside this reproduction, so [`TraceSynthesizer`]
//! regenerates its statistical shape instead:
//!
//! * **Load classes** (§8.4): functions are categorised by average daily
//!   invocations — high (> 512/day), middle, and low (< 64/day).
//! * **Arrival processes**: Poisson for steady functions, Markov-modulated
//!   (bursty) arrivals for the surge-prone ones the paper calls out in
//!   §8.2.1, and heavy-tailed Pareto gaps that produce the skewed
//!   requests-per-container CDF of Fig 5.
//! * **Cluster traces**: a 424-function mix with log-uniform daily rates,
//!   used by the Fig 1 keep-alive sweep and the Fig 14 semi-warm
//!   applicability study.

use faasmem_sim::{SimDuration, SimRng, SimTime};

use crate::trace::{FunctionId, Invocation, InvocationTrace};

/// Load category by average daily invocations (paper §8.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadClass {
    /// More than 512 invocations per day.
    High,
    /// Between 64 and 512 invocations per day.
    Middle,
    /// Fewer than 64 invocations per day.
    Low,
}

impl LoadClass {
    /// Classifies a daily invocation rate per §8.4's thresholds.
    pub fn classify(invocations_per_day: f64) -> LoadClass {
        if invocations_per_day > 512.0 {
            LoadClass::High
        } else if invocations_per_day < 64.0 {
            LoadClass::Low
        } else {
            LoadClass::Middle
        }
    }

    /// A representative mean inter-arrival gap for the class, used when a
    /// synthesized function has no explicit rate.
    pub fn typical_mean_gap(self) -> SimDuration {
        match self {
            LoadClass::High => SimDuration::from_secs(12),
            LoadClass::Middle => SimDuration::from_secs(150),
            LoadClass::Low => SimDuration::from_secs(900),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LoadClass::High => "high",
            LoadClass::Middle => "middle",
            LoadClass::Low => "low",
        }
    }
}

/// The inter-arrival process of one function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Memoryless arrivals with the given mean gap.
    Poisson {
        /// Mean inter-arrival gap.
        mean_gap: SimDuration,
    },
    /// Markov-modulated Poisson: the function alternates between an idle
    /// state (sparse arrivals) and a burst state (dense arrivals). This is
    /// the "sudden increase and decrease" pattern of high-load traces the
    /// paper highlights (§8.2.1).
    Bursty {
        /// Mean gap while idle.
        idle_gap: SimDuration,
        /// Mean gap while bursting.
        burst_gap: SimDuration,
        /// Mean duration of an idle period.
        idle_period: SimDuration,
        /// Mean duration of a burst period.
        burst_period: SimDuration,
    },
    /// Heavy-tailed Pareto gaps: most arrivals cluster, some gaps are very
    /// long — yielding many containers that serve only one or two requests
    /// before their keep-alive expires (Fig 5).
    ParetoGaps {
        /// Minimum gap (Pareto scale).
        min_gap: SimDuration,
        /// Pareto shape; smaller = heavier tail.
        alpha: f64,
    },
}

impl ArrivalModel {
    /// Draws the next inter-arrival gap.
    fn next_gap(&self, rng: &mut SimRng, state: &mut BurstState) -> SimDuration {
        match *self {
            ArrivalModel::Poisson { mean_gap } => rng.exp_duration(mean_gap),
            ArrivalModel::ParetoGaps { min_gap, alpha } => {
                let factor = rng.pareto(1.0, alpha);
                SimDuration::from_micros((min_gap.as_micros() as f64 * factor) as u64)
            }
            ArrivalModel::Bursty {
                idle_gap,
                burst_gap,
                idle_period,
                burst_period,
            } => {
                // Advance the two-state Markov chain lazily: when the
                // current state's remaining budget runs out, flip state.
                loop {
                    let gap = if state.bursting {
                        rng.exp_duration(burst_gap)
                    } else {
                        rng.exp_duration(idle_gap)
                    };
                    if gap <= state.remaining {
                        state.remaining -= gap;
                        return gap;
                    }
                    let leftover = state.remaining;
                    state.bursting = !state.bursting;
                    state.remaining = if state.bursting {
                        rng.exp_duration(burst_period)
                    } else {
                        rng.exp_duration(idle_period)
                    };
                    // Skip to the state boundary and draw in the new state;
                    // credit the time already waited.
                    if !leftover.is_zero() {
                        let gap = if state.bursting {
                            rng.exp_duration(burst_gap)
                        } else {
                            rng.exp_duration(idle_gap)
                        };
                        let total = leftover + gap;
                        state.remaining = state.remaining.saturating_sub(gap);
                        return total;
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct BurstState {
    bursting: bool,
    remaining: SimDuration,
}

impl BurstState {
    fn new() -> Self {
        BurstState {
            bursting: false,
            remaining: SimDuration::from_secs(1),
        }
    }
}

/// Builder-style synthesizer of Azure-like invocation traces.
///
/// # Examples
///
/// ```
/// use faasmem_workload::{FunctionId, LoadClass, TraceSynthesizer};
/// use faasmem_sim::SimTime;
///
/// let trace = TraceSynthesizer::new(1)
///     .load_class(LoadClass::High)
///     .bursty(true)
///     .duration(SimTime::from_mins(60))
///     .synthesize_for(FunctionId(3));
/// assert!(!trace.is_empty());
/// assert_eq!(trace.functions(), vec![FunctionId(3)]);
/// ```
#[derive(Debug, Clone)]
pub struct TraceSynthesizer {
    seed: u64,
    duration: SimTime,
    load_class: LoadClass,
    bursty: bool,
    explicit_model: Option<ArrivalModel>,
}

impl TraceSynthesizer {
    /// Creates a synthesizer with the given seed. Defaults: one-hour
    /// horizon, high load, steady (non-bursty) arrivals.
    pub fn new(seed: u64) -> Self {
        TraceSynthesizer {
            seed,
            duration: SimTime::from_mins(60),
            load_class: LoadClass::High,
            bursty: false,
            explicit_model: None,
        }
    }

    /// Sets the trace horizon.
    pub fn duration(mut self, duration: SimTime) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the load class (ignored if an explicit model is set).
    pub fn load_class(mut self, class: LoadClass) -> Self {
        self.load_class = class;
        self
    }

    /// Toggles bursty (Markov-modulated) arrivals.
    pub fn bursty(mut self, bursty: bool) -> Self {
        self.bursty = bursty;
        self
    }

    /// Overrides the arrival model entirely.
    pub fn arrival_model(mut self, model: ArrivalModel) -> Self {
        self.explicit_model = Some(model);
        self
    }

    fn model_for(&self, rng: &mut SimRng) -> ArrivalModel {
        if let Some(m) = self.explicit_model {
            return m;
        }
        let mean = self.load_class.typical_mean_gap();
        // Jitter the per-function rate ±50% so a cluster isn't uniform.
        let jitter = 0.5 + rng.next_f64();
        let mean = mean.mul_f64(jitter);
        if self.bursty {
            ArrivalModel::Bursty {
                idle_gap: mean * 4,
                burst_gap: (mean / 12).max(SimDuration::from_millis(200)),
                idle_period: SimDuration::from_mins(6),
                burst_period: SimDuration::from_mins(1),
            }
        } else {
            ArrivalModel::ParetoGaps {
                min_gap: mean.mul_f64(0.35),
                alpha: 1.5,
            }
        }
    }

    /// Synthesizes a trace for one function.
    pub fn synthesize_for(&self, function: FunctionId) -> InvocationTrace {
        let mut rng = SimRng::seed_from(
            self.seed ^ (u64::from(function.0)).wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        let model = self.model_for(&mut rng);
        self.generate(function, model, &mut rng)
    }

    fn generate(
        &self,
        function: FunctionId,
        model: ArrivalModel,
        rng: &mut SimRng,
    ) -> InvocationTrace {
        let mut invocations = Vec::new();
        let mut state = BurstState::new();
        // Random phase so clustered functions don't all fire at t=0.
        let mut t = SimTime::ZERO + model.next_gap(rng, &mut state);
        while t <= self.duration {
            invocations.push(Invocation { at: t, function });
            t += model.next_gap(rng, &mut state);
        }
        InvocationTrace::from_invocations(invocations, self.duration)
    }

    /// Synthesizes a whole cluster: `functions` functions with log-uniform
    /// daily rates between 2 and 8192 invocations/day, steady or bursty
    /// per-function at random. Returns the merged trace plus each
    /// function's load class.
    pub fn synthesize_cluster(
        &self,
        functions: u32,
    ) -> (InvocationTrace, Vec<(FunctionId, LoadClass)>) {
        let mut merged: Vec<Invocation> = Vec::new();
        let mut classes = Vec::with_capacity(functions as usize);
        let mut seed_rng = SimRng::seed_from(self.seed);
        for f in 0..functions {
            let function = FunctionId(f);
            let mut rng = seed_rng.fork(u64::from(f) + 1);
            // Log-uniform daily rate in [2, 8192].
            let log_rate = rng.next_f64() * (8192.0f64 / 2.0).ln() + 2.0f64.ln();
            let per_day = log_rate.exp();
            let class = LoadClass::classify(per_day);
            let mean_gap = SimDuration::from_secs_f64(86_400.0 / per_day);
            // Burstiness correlates with load in the Azure trace: §8.4
            // attributes the semi-warm benefit of high-load functions to
            // short-term surges that strand containers, while middle-load
            // functions "tend to have a stable invocation pattern".
            let bursty_prob = match class {
                LoadClass::High => 0.75,
                LoadClass::Middle => 0.15,
                LoadClass::Low => 0.35,
            };
            let model = if rng.chance(bursty_prob) {
                if class == LoadClass::High {
                    // High-load surges: dense in-burst arrivals (so the
                    // observed reuse intervals — and hence the semi-warm
                    // start timing — stay short), separated by silences
                    // longer than any keep-alive, which strand the
                    // scale-out containers (§8.4).
                    ArrivalModel::Bursty {
                        idle_gap: (mean_gap * 6).max(SimDuration::from_mins(20)),
                        burst_gap: (mean_gap / 15).max(SimDuration::from_millis(100)),
                        idle_period: SimDuration::from_mins(15),
                        burst_period: SimDuration::from_secs(45),
                    }
                } else {
                    ArrivalModel::Bursty {
                        idle_gap: mean_gap * 4,
                        burst_gap: (mean_gap / 12).max(SimDuration::from_millis(200)),
                        idle_period: SimDuration::from_mins(8),
                        burst_period: SimDuration::from_mins(1),
                    }
                }
            } else {
                ArrivalModel::ParetoGaps {
                    min_gap: mean_gap.mul_f64(0.35),
                    alpha: 1.5,
                }
            };
            let trace = self.generate(function, model, &mut rng);
            merged.extend(trace.iter().copied());
            classes.push((function, class));
        }
        (
            InvocationTrace::from_invocations(merged, self.duration),
            classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_thresholds() {
        assert_eq!(LoadClass::classify(1000.0), LoadClass::High);
        assert_eq!(LoadClass::classify(512.0), LoadClass::Middle);
        assert_eq!(LoadClass::classify(100.0), LoadClass::Middle);
        assert_eq!(LoadClass::classify(10.0), LoadClass::Low);
        assert_eq!(LoadClass::classify(64.0), LoadClass::Middle);
    }

    #[test]
    fn same_seed_reproduces_trace() {
        let a = TraceSynthesizer::new(5).synthesize_for(FunctionId(0));
        let b = TraceSynthesizer::new(5).synthesize_for(FunctionId(0));
        assert_eq!(a, b);
    }

    #[test]
    fn different_functions_differ() {
        let synth = TraceSynthesizer::new(5);
        let a = synth.synthesize_for(FunctionId(0));
        let b = synth.synthesize_for(FunctionId(1));
        assert_ne!(a.for_function(FunctionId(0)).len(), 0);
        assert_ne!(b.for_function(FunctionId(1)).len(), 0);
        // They must not be time-shifted copies of each other.
        let ta: Vec<_> = a.iter().map(|i| i.at).take(5).collect();
        let tb: Vec<_> = b.iter().map(|i| i.at).take(5).collect();
        assert_ne!(ta, tb);
    }

    #[test]
    fn load_classes_order_by_volume() {
        let mk = |class| {
            TraceSynthesizer::new(9)
                .load_class(class)
                .duration(SimTime::from_mins(240))
                .synthesize_for(FunctionId(0))
                .len()
        };
        let high = mk(LoadClass::High);
        let mid = mk(LoadClass::Middle);
        let low = mk(LoadClass::Low);
        assert!(high > mid, "high {high} vs mid {mid}");
        assert!(mid > low, "mid {mid} vs low {low}");
    }

    #[test]
    fn all_invocations_inside_horizon() {
        let t = TraceSynthesizer::new(3)
            .duration(SimTime::from_mins(10))
            .synthesize_for(FunctionId(0));
        for inv in t.iter() {
            assert!(inv.at <= t.duration());
        }
    }

    #[test]
    fn bursty_traces_have_higher_interval_variance() {
        let steady = TraceSynthesizer::new(11)
            .arrival_model(ArrivalModel::Poisson {
                mean_gap: SimDuration::from_secs(10),
            })
            .duration(SimTime::from_mins(120))
            .synthesize_for(FunctionId(0));
        let bursty = TraceSynthesizer::new(11)
            .arrival_model(ArrivalModel::Bursty {
                idle_gap: SimDuration::from_secs(40),
                burst_gap: SimDuration::from_secs(1),
                idle_period: SimDuration::from_mins(5),
                burst_period: SimDuration::from_mins(1),
            })
            .duration(SimTime::from_mins(120))
            .synthesize_for(FunctionId(0));
        let cv = |t: &InvocationTrace| {
            let s = t.stats();
            s.interval_std_secs / s.mean_interval_secs.max(1e-9)
        };
        assert!(
            cv(&bursty) > cv(&steady),
            "bursty CV {} vs steady CV {}",
            cv(&bursty),
            cv(&steady)
        );
    }

    #[test]
    fn pareto_gaps_are_heavy_tailed() {
        let t = TraceSynthesizer::new(13)
            .arrival_model(ArrivalModel::ParetoGaps {
                min_gap: SimDuration::from_secs(5),
                alpha: 1.2,
            })
            .duration(SimTime::from_mins(600))
            .synthesize_for(FunctionId(0));
        let s = t.stats();
        // Heavy tail: std well above the mean would hold for alpha<2.
        assert!(s.interval_std_secs > s.mean_interval_secs * 0.8, "{s:?}");
        // Gaps never shorter than the scale.
        let mut prev = None;
        for inv in t.iter() {
            if let Some(p) = prev {
                assert!(inv.at.saturating_since(p) >= SimDuration::from_secs(5));
            }
            prev = Some(inv.at);
        }
    }

    #[test]
    fn poisson_rate_is_close() {
        let t = TraceSynthesizer::new(17)
            .arrival_model(ArrivalModel::Poisson {
                mean_gap: SimDuration::from_secs(6),
            })
            .duration(SimTime::from_mins(600))
            .synthesize_for(FunctionId(0));
        let expected = 600.0 * 60.0 / 6.0;
        let got = t.len() as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn cluster_has_all_classes_and_functions() {
        let (trace, classes) = TraceSynthesizer::new(21)
            .duration(SimTime::from_mins(120))
            .synthesize_cluster(60);
        assert_eq!(classes.len(), 60);
        let highs = classes
            .iter()
            .filter(|(_, c)| *c == LoadClass::High)
            .count();
        let mids = classes
            .iter()
            .filter(|(_, c)| *c == LoadClass::Middle)
            .count();
        let lows = classes.iter().filter(|(_, c)| *c == LoadClass::Low).count();
        assert!(
            highs > 0 && mids > 0 && lows > 0,
            "high {highs} mid {mids} low {lows}"
        );
        assert!(!trace.is_empty());
        assert!(
            trace.functions().len() > 30,
            "most functions fire at least once"
        );
    }

    #[test]
    fn cluster_is_deterministic() {
        let (a, _) = TraceSynthesizer::new(33).synthesize_cluster(20);
        let (b, _) = TraceSynthesizer::new(33).synthesize_cluster(20);
        assert_eq!(a, b);
    }
}
