//! Importer for the real *Azure Functions Invocation Trace 2021*.
//!
//! The dataset the paper replays (Zhang et al., SOSP'21) ships as a CSV
//! with one row per invocation:
//!
//! ```text
//! app,func,end_timestamp,duration
//! ce1e7...,c8af9...,60.071,0.026
//! ```
//!
//! where `end_timestamp` is seconds since the trace start and `duration`
//! is the execution time in seconds. This reproduction synthesizes
//! statistically equivalent traces by default (the dataset is not
//! redistributable), but users who have downloaded the real file can
//! replay it through this importer: invocations are keyed by `func` hash
//! (mapped to dense [`FunctionId`]s in order of first appearance) and
//! fired at `end_timestamp - duration`.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use faasmem_sim::SimTime;

use crate::trace::{FunctionId, Invocation, InvocationTrace};

/// Errors produced when parsing the Azure CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAzureError {
    /// The file has no header row.
    MissingHeader,
    /// The header lacks one of the required columns.
    MissingColumn {
        /// The column that could not be found.
        column: &'static str,
    },
    /// A data row is malformed.
    BadRow {
        /// 1-based line number of the offending row.
        line: usize,
    },
}

impl fmt::Display for ParseAzureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAzureError::MissingHeader => write!(f, "missing CSV header"),
            ParseAzureError::MissingColumn { column } => {
                write!(f, "missing required column `{column}`")
            }
            ParseAzureError::BadRow { line } => write!(f, "malformed row at line {line}"),
        }
    }
}

impl Error for ParseAzureError {}

/// The result of importing the CSV: the trace plus the hash→id mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureImport {
    /// The replayable trace (sorted by invocation time).
    pub trace: InvocationTrace,
    /// Function hash → dense id, in order of first appearance.
    pub functions: Vec<String>,
}

impl AzureImport {
    /// The dense id assigned to a function hash, if it appeared.
    pub fn id_of(&self, func_hash: &str) -> Option<FunctionId> {
        self.functions
            .iter()
            .position(|h| h == func_hash)
            .map(|i| FunctionId(i as u32))
    }
}

/// Parses the Azure Functions Invocation Trace 2021 CSV format.
///
/// Rows whose `end_timestamp - duration` is negative clamp to zero (a
/// handful of rows in the real dataset start marginally before the trace
/// origin).
///
/// # Errors
///
/// Returns [`ParseAzureError`] for a missing header, missing required
/// columns (`func`, `end_timestamp`, `duration`), or malformed rows.
///
/// # Examples
///
/// ```
/// use faasmem_workload::azure_csv;
///
/// let csv = "app,func,end_timestamp,duration\n\
///            a1,f1,60.5,0.5\n\
///            a1,f2,61.0,0.25\n\
///            a1,f1,70.0,1.0\n";
/// let import = azure_csv::parse(csv).unwrap();
/// assert_eq!(import.trace.len(), 3);
/// assert_eq!(import.functions.len(), 2);
/// ```
pub fn parse(csv: &str) -> Result<AzureImport, ParseAzureError> {
    parse_with(csv, Err)
}

/// A leniently-imported Azure trace: malformed data rows were skipped,
/// not rejected, and the count of skipped rows is reported alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyAzureImport {
    /// The import built from the rows that did parse.
    pub import: AzureImport,
    /// How many data rows were malformed and skipped.
    pub skipped_rows: u64,
}

/// Parses the Azure CSV, skipping malformed data rows instead of failing
/// on them.
///
/// A missing header or missing required column is still a hard error —
/// without them no row is interpretable. Malformed rows are counted in
/// [`LossyAzureImport::skipped_rows`] and otherwise ignored; real trace
/// dumps routinely carry a handful of truncated or garbled lines, and a
/// multi-hour replay should not abort over them.
///
/// # Errors
///
/// Returns [`ParseAzureError::MissingHeader`] or
/// [`ParseAzureError::MissingColumn`] only.
///
/// # Examples
///
/// ```
/// use faasmem_workload::azure_csv;
///
/// let csv = "app,func,end_timestamp,duration\n\
///            a1,f1,60.5,0.5\n\
///            a1,f2,not-a-number,0.25\n\
///            a1,f1,70.0,1.0\n";
/// let lossy = azure_csv::parse_lossy(csv).unwrap();
/// assert_eq!(lossy.import.trace.len(), 2);
/// assert_eq!(lossy.skipped_rows, 1);
/// ```
pub fn parse_lossy(csv: &str) -> Result<LossyAzureImport, ParseAzureError> {
    let mut skipped_rows = 0u64;
    let import = parse_with(csv, |_| {
        skipped_rows += 1;
        Ok(())
    })?;
    Ok(LossyAzureImport {
        import,
        skipped_rows,
    })
}

/// The shared parse loop. `on_bad_row` decides whether a per-row error
/// aborts the parse (strict) or is swallowed (lossy); header and column
/// errors always abort.
fn parse_with(
    csv: &str,
    mut on_bad_row: impl FnMut(ParseAzureError) -> Result<(), ParseAzureError>,
) -> Result<AzureImport, ParseAzureError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseAzureError::MissingHeader)?;
    let columns: Vec<&str> = header.split(',').map(str::trim).collect();
    let col = |name: &'static str| -> Result<usize, ParseAzureError> {
        columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .ok_or(ParseAzureError::MissingColumn { column: name })
    };
    let func_col = col("func")?;
    let end_col = col("end_timestamp")?;
    let dur_col = col("duration")?;

    let mut ids: HashMap<String, u32> = HashMap::new();
    let mut functions: Vec<String> = Vec::new();
    let mut invocations = Vec::new();
    let mut horizon = SimTime::ZERO;
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let parse_row = || -> Option<(String, f64, f64)> {
            let func = fields.get(func_col)?.to_string();
            let end: f64 = fields.get(end_col)?.parse().ok()?;
            let dur: f64 = fields.get(dur_col)?.parse().ok()?;
            (end.is_finite() && dur.is_finite() && dur >= 0.0 && end.is_sign_positive())
                .then_some((func, end, dur))
        };
        let Some((func, end, dur)) = parse_row() else {
            on_bad_row(ParseAzureError::BadRow { line: idx + 1 })?;
            continue;
        };
        let next_id = ids.len() as u32;
        let id = *ids.entry(func).or_insert_with_key(|k| {
            functions.push(k.clone());
            next_id
        });
        let start = (end - dur).max(0.0);
        let at = SimTime::from_secs_f64(start);
        horizon = horizon.max(SimTime::from_secs_f64(end));
        invocations.push(Invocation {
            at,
            function: FunctionId(id),
        });
    }
    Ok(AzureImport {
        trace: InvocationTrace::from_invocations(invocations, horizon),
        functions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "app,func,end_timestamp,duration\n\
        appA,funcX,60.5,0.5\n\
        appA,funcY,61.0,0.25\n\
        appB,funcX,70.0,1.0\n\
        appB,funcZ,0.1,0.5\n";

    #[test]
    fn parses_and_maps_functions_densely() {
        let import = parse(SAMPLE).unwrap();
        assert_eq!(import.trace.len(), 4);
        assert_eq!(import.functions, vec!["funcX", "funcY", "funcZ"]);
        assert_eq!(import.id_of("funcX"), Some(FunctionId(0)));
        assert_eq!(import.id_of("funcZ"), Some(FunctionId(2)));
        assert_eq!(import.id_of("nope"), None);
        // funcX appears twice under different apps but is one function.
        assert_eq!(import.trace.for_function(FunctionId(0)).len(), 2);
    }

    #[test]
    fn start_times_are_end_minus_duration() {
        let import = parse(SAMPLE).unwrap();
        let first = import.trace.for_function(FunctionId(0))[0];
        assert_eq!(first.at, SimTime::from_secs_f64(60.0));
    }

    #[test]
    fn negative_starts_clamp_to_zero() {
        let import = parse(SAMPLE).unwrap();
        let z = import.trace.for_function(FunctionId(2))[0];
        assert_eq!(z.at, SimTime::ZERO);
    }

    #[test]
    fn horizon_covers_latest_end() {
        let import = parse(SAMPLE).unwrap();
        assert_eq!(import.trace.duration(), SimTime::from_secs_f64(70.0));
    }

    #[test]
    fn header_column_order_is_flexible() {
        let csv = "duration,func,app,end_timestamp\n0.5,f,a,10\n";
        let import = parse(csv).unwrap();
        assert_eq!(import.trace.len(), 1);
        assert_eq!(
            import.trace.iter().next().unwrap().at,
            SimTime::from_secs_f64(9.5)
        );
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(parse(""), Err(ParseAzureError::MissingHeader));
        assert_eq!(
            parse("app,funk,end_timestamp,duration\n"),
            Err(ParseAzureError::MissingColumn { column: "func" })
        );
        assert_eq!(
            parse("app,func,end_timestamp,duration\nx,f,abc,1\n"),
            Err(ParseAzureError::BadRow { line: 2 })
        );
        assert_eq!(
            parse("app,func,end_timestamp,duration\nx,f,10\n"),
            Err(ParseAzureError::BadRow { line: 2 })
        );
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "app,func,end_timestamp,duration\n\nx,f,10,1\n\n";
        assert_eq!(parse(csv).unwrap().trace.len(), 1);
    }

    #[test]
    fn lossy_skips_and_counts_bad_rows() {
        let csv = "app,func,end_timestamp,duration\n\
            appA,funcX,60.5,0.5\n\
            appA,funcY,nan,0.25\n\
            truncated-row\n\
            appB,funcZ,70.0,1.0\n";
        let lossy = parse_lossy(csv).unwrap();
        assert_eq!(lossy.skipped_rows, 2);
        assert_eq!(lossy.import.trace.len(), 2);
        // Skipped rows must not burn dense function ids.
        assert_eq!(lossy.import.functions, vec!["funcX", "funcZ"]);
    }

    #[test]
    fn lossy_still_rejects_structural_errors() {
        assert_eq!(parse_lossy(""), Err(ParseAzureError::MissingHeader));
        assert_eq!(
            parse_lossy("app,funk,end_timestamp,duration\n"),
            Err(ParseAzureError::MissingColumn { column: "func" })
        );
    }

    #[test]
    fn lossy_matches_strict_on_clean_input() {
        let lossy = parse_lossy(SAMPLE).unwrap();
        assert_eq!(lossy.skipped_rows, 0);
        assert_eq!(lossy.import, parse(SAMPLE).unwrap());
    }

    #[test]
    fn error_display_is_meaningful() {
        assert!(ParseAzureError::MissingHeader
            .to_string()
            .contains("header"));
        assert!(ParseAzureError::MissingColumn { column: "func" }
            .to_string()
            .contains("func"));
        assert!(ParseAzureError::BadRow { line: 7 }
            .to_string()
            .contains('7'));
    }
}
