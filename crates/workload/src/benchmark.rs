//! The paper's benchmark suite as parameterised memory/timing models.
//!
//! Calibration sources, all from the paper:
//!
//! * Fig 4 — inactive runtime-segment memory per language runtime
//!   (OpenWhisk Python ≈ 24 MB, Java ≈ 57 MB; Azure ≥ 100 MB).
//! * Fig 6 — BERT allocates ~1000 MB during a ~5 s init, ~610 MB accessed
//!   per request of which ~400 MB are init-segment hot pages.
//! * Fig 9 — Web's requests touch Pareto-popular cached HTML pages.
//! * §8.1 — CPU shares (0.1-core micro-benchmarks; 1 / 0.5 / 0.2 cores
//!   for Bert / Graph / Web) and ~200 ms user-facing latency targets.
//! * §8.2.1 — micro-benchmarks have "very little memory in the init
//!   segment" while the three applications are init-heavy; Graph performs
//!   a full traversal per request; Web's accesses follow a Pareto
//!   distribution.
//! * §8.6 — memory quotas: Bert 1280 MB, Graph 256 MB, Web 384 MB.

use faasmem_sim::SimDuration;

use crate::access::InitAccess;

/// The language runtime a serverless container embeds (Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeKind {
    /// Node.js runtime.
    NodeJs,
    /// CPython runtime (OpenWhisk's Flask-based action proxy).
    Python,
    /// JVM runtime — the largest inactive footprint in Fig 4.
    Java,
}

impl RuntimeKind {
    /// All runtimes measured in Fig 4.
    pub const ALL: [RuntimeKind; 3] = [RuntimeKind::NodeJs, RuntimeKind::Python, RuntimeKind::Java];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            RuntimeKind::NodeJs => "Node.js",
            RuntimeKind::Python => "Python",
            RuntimeKind::Java => "Java",
        }
    }
}

/// The serverless platform whose official runtime image is modelled
/// (Fig 4 compares OpenWhisk and Azure Functions builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerlessPlatform {
    /// Apache OpenWhisk official images.
    OpenWhisk,
    /// Azure Functions official images.
    Azure,
}

impl ServerlessPlatform {
    /// Both platforms measured in Fig 4.
    pub const ALL: [ServerlessPlatform; 2] =
        [ServerlessPlatform::OpenWhisk, ServerlessPlatform::Azure];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ServerlessPlatform::OpenWhisk => "OpenWhisk",
            ServerlessPlatform::Azure => "Azure",
        }
    }
}

/// A container-runtime memory model: how much a hello-world container of
/// this runtime occupies, and how much of that is never accessed again
/// after the first request (Fig 4's "inactive memory").
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSpec {
    /// Platform whose official image this models.
    pub platform: ServerlessPlatform,
    /// Embedded language runtime.
    pub kind: RuntimeKind,
    /// Total runtime-segment footprint in MiB.
    pub total_mib: u64,
    /// MiB of the runtime segment left inactive after a request — the
    /// offloading opportunity FaaSMem's Runtime Pucket harvests.
    pub inactive_mib: u64,
}

impl RuntimeSpec {
    /// The six platform × runtime combinations of Fig 4.
    ///
    /// Inactive sizes are read off the figure: OpenWhisk Python ≈ 24 MB,
    /// Java ≈ 57 MB, Node.js ≈ 35 MB; all three Azure runtimes exceed
    /// 100 MB.
    pub fn catalog() -> Vec<RuntimeSpec> {
        use RuntimeKind::*;
        use ServerlessPlatform::*;
        vec![
            RuntimeSpec {
                platform: OpenWhisk,
                kind: NodeJs,
                total_mib: 44,
                inactive_mib: 35,
            },
            RuntimeSpec {
                platform: OpenWhisk,
                kind: Python,
                total_mib: 30,
                inactive_mib: 24,
            },
            RuntimeSpec {
                platform: OpenWhisk,
                kind: Java,
                total_mib: 68,
                inactive_mib: 57,
            },
            RuntimeSpec {
                platform: Azure,
                kind: NodeJs,
                total_mib: 126,
                inactive_mib: 105,
            },
            RuntimeSpec {
                platform: Azure,
                kind: Python,
                total_mib: 132,
                inactive_mib: 112,
            },
            RuntimeSpec {
                platform: Azure,
                kind: Java,
                total_mib: 178,
                inactive_mib: 151,
            },
        ]
    }

    /// The runtime the evaluation containers embed: the OpenWhisk Python
    /// action proxy (§5.1: "we use the runtime of OpenWhisk, which
    /// consists a Flask-based action proxy").
    pub fn openwhisk_python() -> RuntimeSpec {
        Self::catalog()
            .into_iter()
            .find(|r| r.platform == ServerlessPlatform::OpenWhisk && r.kind == RuntimeKind::Python)
            .expect("catalog contains OpenWhisk/Python")
    }

    /// MiB of runtime memory that stays hot across requests (the proxy's
    /// working set).
    pub fn hot_mib(&self) -> u64 {
        self.total_mib - self.inactive_mib
    }
}

/// A full benchmark model: footprints, access patterns, timing.
///
/// # Examples
///
/// ```
/// use faasmem_workload::BenchmarkSpec;
///
/// let web = BenchmarkSpec::by_name("web").unwrap();
/// assert_eq!(web.quota_mib, 384); // §8.6 deployment quota
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name as used throughout the paper's figures.
    pub name: &'static str,
    /// `true` for the three real-world applications (Bert, Graph, Web).
    pub is_application: bool,
    /// Runtime-segment footprint in MiB (Segment-1).
    pub runtime_mib: u64,
    /// MiB of the runtime segment touched by every request (action-proxy
    /// working set); the remainder is the Runtime Pucket's cold harvest.
    pub runtime_hot_mib: u64,
    /// Init-segment footprint in MiB that stays resident after
    /// initialization (Segment-2).
    pub init_mib: u64,
    /// How requests touch the init segment.
    pub init_access: InitAccess,
    /// Execution-segment allocation per request in MiB, freed at request
    /// completion (Segment-3).
    pub exec_mib: u64,
    /// Pure compute time of one request, excluding memory penalties.
    pub exec_time: SimDuration,
    /// Container-launch (runtime load) time at cold start.
    pub launch_time: SimDuration,
    /// Function initialization time at cold start.
    pub init_time: SimDuration,
    /// Probability that a request touches one random *cold* runtime page
    /// (Fig 8: Runtime-Pucket recalls are rare but nonzero).
    pub runtime_rare_touch_prob: f64,
    /// CPU share assigned (§8.1): 0.1 for micro-benchmarks; 1.0 / 0.5 /
    /// 0.2 for Bert / Graph / Web.
    pub cpu_share: f64,
    /// Deployment memory quota in MiB (§8.6) used by the density model.
    pub quota_mib: u64,
}

impl BenchmarkSpec {
    /// The 11 benchmarks of the evaluation (§8.1): eight FunctionBench
    /// micro-benchmarks plus Bert, Graph and Web.
    pub fn catalog() -> Vec<BenchmarkSpec> {
        let rt = RuntimeSpec::openwhisk_python();
        let micro =
            |name: &'static str, init_mib: u64, exec_mib: u64, exec_ms: u64, quota_mib: u64| {
                BenchmarkSpec {
                    name,
                    is_application: false,
                    runtime_mib: rt.total_mib,
                    runtime_hot_mib: rt.hot_mib(),
                    init_mib,
                    // Micro-benchmarks keep a tiny but fully hot init segment
                    // (imports touched on every call).
                    init_access: InitAccess::FixedHot { hot_fraction: 1.0 },
                    exec_mib,
                    exec_time: SimDuration::from_millis(exec_ms),
                    launch_time: SimDuration::from_millis(480),
                    init_time: SimDuration::from_millis(150),
                    runtime_rare_touch_prob: 0.004,
                    cpu_share: 0.1,
                    quota_mib,
                }
            };
        vec![
            // name        init  exec  time  quota
            micro("json", 2, 6, 35, 128),
            micro("gzip", 4, 60, 220, 128),
            micro("pyaes", 3, 8, 160, 128),
            micro("chameleon", 6, 12, 110, 128),
            micro("image", 8, 50, 260, 128),
            micro("linpack", 10, 40, 150, 128),
            micro("matmul", 12, 60, 190, 128),
            micro("float", 2, 4, 60, 128),
            BenchmarkSpec {
                name: "bert",
                is_application: true,
                runtime_mib: rt.total_mib,
                runtime_hot_mib: rt.hot_mib(),
                // Fig 6: ~1000 MB allocated during init, ~900 resident.
                init_mib: 900,
                // ~400 MB of init pages hot in every request plus a small
                // input-dependent slice ("different requests may access
                // different nodes in the neural network", §8.1).
                init_access: InitAccess::HotPlusRandom {
                    hot_fraction: 0.44,
                    random_fraction: 0.03,
                },
                exec_mib: 200,
                exec_time: SimDuration::from_millis(130),
                launch_time: SimDuration::from_millis(900),
                init_time: SimDuration::from_secs(5),
                runtime_rare_touch_prob: 0.010,
                cpu_share: 1.0,
                quota_mib: 1280,
            },
            BenchmarkSpec {
                name: "graph",
                is_application: true,
                runtime_mib: rt.total_mib,
                runtime_hot_mib: rt.hot_mib(),
                init_mib: 180,
                // §8.2.1: "each request performs a complete traversal of
                // the entire graph" — no cold init pages to harvest.
                init_access: InitAccess::FullTraversal,
                exec_mib: 30,
                exec_time: SimDuration::from_millis(230),
                launch_time: SimDuration::from_millis(600),
                init_time: SimDuration::from_millis(1_200),
                runtime_rare_touch_prob: 0.006,
                cpu_share: 0.5,
                quota_mib: 256,
            },
            BenchmarkSpec {
                name: "web",
                is_application: true,
                runtime_mib: rt.total_mib,
                runtime_hot_mib: rt.hot_mib(),
                // A large cache of rendered HTML pages; each request
                // touches the Pareto-popular subset (Fig 9).
                init_mib: 300,
                init_access: InitAccess::ParetoObjects {
                    alpha: 0.9,
                    objects: 100,
                    per_request: 3,
                },
                exec_mib: 8,
                exec_time: SimDuration::from_millis(110),
                launch_time: SimDuration::from_millis(550),
                init_time: SimDuration::from_millis(800),
                runtime_rare_touch_prob: 0.008,
                cpu_share: 0.2,
                quota_mib: 384,
            },
        ]
    }

    /// Looks up a catalog benchmark by its paper name.
    pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
        Self::catalog().into_iter().find(|b| b.name == name)
    }

    /// The three real-world applications (Table 1, Fig 16).
    pub fn applications() -> Vec<BenchmarkSpec> {
        Self::catalog()
            .into_iter()
            .filter(|b| b.is_application)
            .collect()
    }

    /// The eight FunctionBench micro-benchmarks.
    pub fn micro_benchmarks() -> Vec<BenchmarkSpec> {
        Self::catalog()
            .into_iter()
            .filter(|b| !b.is_application)
            .collect()
    }

    /// A hello-world function on the given runtime, used by the Fig 4
    /// experiment: negligible init and exec segments, so the measured
    /// inactive memory is the runtime's.
    pub fn hello_world(runtime: &RuntimeSpec) -> BenchmarkSpec {
        BenchmarkSpec {
            name: "hello-world",
            is_application: false,
            runtime_mib: runtime.total_mib,
            runtime_hot_mib: runtime.hot_mib(),
            init_mib: 1,
            init_access: InitAccess::FixedHot { hot_fraction: 1.0 },
            exec_mib: 1,
            exec_time: SimDuration::from_millis(5),
            launch_time: SimDuration::from_millis(400),
            init_time: SimDuration::from_millis(50),
            runtime_rare_touch_prob: 0.0,
            cpu_share: 0.1,
            quota_mib: 128,
        }
    }

    /// Total base (keep-alive resident) footprint: runtime + init, MiB.
    pub fn base_mib(&self) -> u64 {
        self.runtime_mib + self.init_mib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_papers_eleven() {
        let names: Vec<&str> = BenchmarkSpec::catalog().iter().map(|b| b.name).collect();
        for expected in [
            "json",
            "gzip",
            "pyaes",
            "chameleon",
            "image",
            "linpack",
            "matmul",
            "float",
            "bert",
            "graph",
            "web",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn applications_are_init_heavy_micros_are_not() {
        for app in BenchmarkSpec::applications() {
            assert!(
                app.init_mib > app.runtime_mib,
                "{} should be init-heavy",
                app.name
            );
        }
        for micro in BenchmarkSpec::micro_benchmarks() {
            assert!(
                micro.init_mib < micro.runtime_mib,
                "{} init should be tiny",
                micro.name
            );
        }
    }

    #[test]
    fn cpu_shares_match_paper() {
        assert_eq!(BenchmarkSpec::by_name("bert").unwrap().cpu_share, 1.0);
        assert_eq!(BenchmarkSpec::by_name("graph").unwrap().cpu_share, 0.5);
        assert_eq!(BenchmarkSpec::by_name("web").unwrap().cpu_share, 0.2);
        for micro in BenchmarkSpec::micro_benchmarks() {
            assert_eq!(micro.cpu_share, 0.1);
        }
    }

    #[test]
    fn quotas_match_section_8_6() {
        assert_eq!(BenchmarkSpec::by_name("bert").unwrap().quota_mib, 1280);
        assert_eq!(BenchmarkSpec::by_name("graph").unwrap().quota_mib, 256);
        assert_eq!(BenchmarkSpec::by_name("web").unwrap().quota_mib, 384);
    }

    #[test]
    fn runtime_catalog_matches_fig4_shape() {
        let cat = RuntimeSpec::catalog();
        assert_eq!(cat.len(), 6);
        // Azure runtimes all exceed 100 MB inactive.
        for r in cat
            .iter()
            .filter(|r| r.platform == ServerlessPlatform::Azure)
        {
            assert!(
                r.inactive_mib >= 100,
                "{} {}",
                r.platform.name(),
                r.kind.name()
            );
        }
        // Java has the largest inactive footprint on each platform.
        for platform in ServerlessPlatform::ALL {
            let of = |k: RuntimeKind| {
                cat.iter()
                    .find(|r| r.platform == platform && r.kind == k)
                    .unwrap()
                    .inactive_mib
            };
            assert!(of(RuntimeKind::Java) > of(RuntimeKind::Python));
            assert!(of(RuntimeKind::Java) > of(RuntimeKind::NodeJs));
        }
        // OpenWhisk Python ≈ 24 MB, Java ≈ 57 MB (Fig 4).
        let ow_py = RuntimeSpec::openwhisk_python();
        assert_eq!(ow_py.inactive_mib, 24);
    }

    #[test]
    fn hot_plus_inactive_is_total() {
        for r in RuntimeSpec::catalog() {
            assert_eq!(r.hot_mib() + r.inactive_mib, r.total_mib);
        }
    }

    #[test]
    fn bert_matches_fig6_shape() {
        let bert = BenchmarkSpec::by_name("bert").unwrap();
        // ~900 MiB resident init; ~400 MiB of it hot per request.
        let hot = match bert.init_access {
            InitAccess::HotPlusRandom { hot_fraction, .. } => {
                (bert.init_mib as f64 * hot_fraction) as u64
            }
            _ => panic!("bert should be hot-plus-random"),
        };
        assert!((350..=450).contains(&hot), "hot init ≈ 400 MiB, got {hot}");
        assert_eq!(bert.init_time, SimDuration::from_secs(5));
    }

    #[test]
    fn hello_world_is_runtime_dominated() {
        let hw = BenchmarkSpec::hello_world(&RuntimeSpec::openwhisk_python());
        assert!(hw.runtime_mib > 10 * hw.init_mib);
        assert!(hw.runtime_mib > 10 * hw.exec_mib);
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(BenchmarkSpec::by_name("nope").is_none());
    }

    #[test]
    fn exec_times_near_user_facing_targets() {
        // §8.1: applications tuned to ~200 ms user-facing latency.
        for app in BenchmarkSpec::applications() {
            let ms = app.exec_time.as_millis_f64();
            assert!((100.0..=300.0).contains(&ms), "{}: {ms} ms", app.name);
        }
    }
}
