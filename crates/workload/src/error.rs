//! A unified error type for trace ingestion.
//!
//! Both importers ([`crate::azure_csv`] and [`crate::trace_io`]) keep
//! their own precise error enums; this module folds them into one
//! [`TraceError`] so drivers that accept either format can hold a single
//! error type in their signatures.

use std::error::Error;
use std::fmt;

use crate::azure_csv::ParseAzureError;
use crate::trace_io::ParseTraceError;

/// Any error produced while ingesting an invocation trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The Azure CSV importer rejected the input.
    Azure(ParseAzureError),
    /// The v1 text-format parser rejected the input.
    Text(ParseTraceError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Azure(e) => write!(f, "azure csv: {e}"),
            TraceError::Text(e) => write!(f, "trace text: {e}"),
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Azure(e) => Some(e),
            TraceError::Text(e) => Some(e),
        }
    }
}

impl From<ParseAzureError> for TraceError {
    fn from(e: ParseAzureError) -> Self {
        TraceError::Azure(e)
    }
}

impl From<ParseTraceError> for TraceError {
    fn from(e: ParseTraceError) -> Self {
        TraceError::Text(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_both_sources() {
        let a: TraceError = ParseAzureError::MissingHeader.into();
        assert_eq!(a, TraceError::Azure(ParseAzureError::MissingHeader));
        assert!(a.to_string().contains("azure csv"));
        assert!(a.source().is_some());

        let t: TraceError = ParseTraceError::BadLine { line: 3 }.into();
        assert_eq!(t, TraceError::Text(ParseTraceError::BadLine { line: 3 }));
        assert!(t.to_string().contains('3'));
        assert!(t.source().is_some());
    }
}
