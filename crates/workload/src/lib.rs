#![warn(missing_docs)]

//! Workload models for the FaaSMem reproduction.
//!
//! Two ingredients drive every experiment in the paper:
//!
//! 1. **What a function does to memory when it runs.** The paper uses
//!    eight FunctionBench micro-benchmarks plus three applications
//!    (BERT inference, graph BFS, an HTML web service). Each is modelled
//!    here as a [`BenchmarkSpec`]: segment footprints, per-request access
//!    patterns and timing constants calibrated to the paper's Figures 4,
//!    6, 8 and 9 and Table 1.
//! 2. **When functions are invoked.** The paper replays the Azure
//!    Functions 2021 trace (424 functions, ~2M invocations). The trace is
//!    not redistributable here, so [`TraceSynthesizer`] regenerates its
//!    statistical shape: per-function load classes (high/middle/low),
//!    Poisson and bursty (Markov-modulated) arrival processes and
//!    heavy-tailed idle gaps.
//!
//! # Examples
//!
//! ```
//! use faasmem_workload::{BenchmarkSpec, FunctionId, LoadClass, TraceSynthesizer};
//! use faasmem_sim::SimTime;
//!
//! let bert = BenchmarkSpec::by_name("bert").unwrap();
//! assert!(bert.init_mib > bert.runtime_mib); // apps are init-heavy
//!
//! let trace = TraceSynthesizer::new(42)
//!     .load_class(LoadClass::High)
//!     .duration(SimTime::from_mins(60))
//!     .synthesize_for(FunctionId(0));
//! assert!(trace.len() > 100); // a high-load hour has many invocations
//! ```

pub mod access;
pub mod azure;
pub mod azure_csv;
pub mod benchmark;
pub mod error;
pub mod trace;
pub mod trace_io;

pub use access::{AccessSet, InitAccess, RequestAccess};
pub use azure::{ArrivalModel, LoadClass, TraceSynthesizer};
pub use azure_csv::{AzureImport, LossyAzureImport, ParseAzureError};
pub use benchmark::{BenchmarkSpec, RuntimeKind, RuntimeSpec, ServerlessPlatform};
pub use error::TraceError;
pub use trace::{FunctionId, Invocation, InvocationTrace, TraceStats};
pub use trace_io::{LossyTrace, ParseTraceError};
