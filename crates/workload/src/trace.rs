//! Invocation traces: the "when" of the workload.

use std::fmt;

use faasmem_metrics::Cdf;
use faasmem_sim::SimTime;

/// Identifies a registered function within a platform run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FunctionId(pub u32);

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// One invocation request: a firing timestamp and a target function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    /// When the request arrives at the gateway.
    pub at: SimTime,
    /// The function invoked.
    pub function: FunctionId,
}

/// A time-sorted sequence of invocations over a fixed horizon.
///
/// # Examples
///
/// ```
/// use faasmem_workload::{FunctionId, Invocation, InvocationTrace};
/// use faasmem_sim::SimTime;
///
/// let trace = InvocationTrace::from_invocations(
///     vec![
///         Invocation { at: SimTime::from_secs(3), function: FunctionId(0) },
///         Invocation { at: SimTime::from_secs(1), function: FunctionId(0) },
///     ],
///     SimTime::from_secs(10),
/// );
/// assert_eq!(trace.len(), 2);
/// assert!(trace.iter().next().unwrap().at == SimTime::from_secs(1)); // sorted
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvocationTrace {
    invocations: Vec<Invocation>,
    duration: SimTime,
}

impl InvocationTrace {
    /// Builds a trace, sorting invocations by time (stable, so same-time
    /// arrivals keep their relative order).
    ///
    /// # Panics
    ///
    /// Panics if any invocation fires after `duration`.
    pub fn from_invocations(mut invocations: Vec<Invocation>, duration: SimTime) -> Self {
        invocations.sort_by_key(|inv| inv.at);
        if let Some(last) = invocations.last() {
            assert!(
                last.at <= duration,
                "invocation at {} beyond horizon {duration}",
                last.at
            );
        }
        InvocationTrace {
            invocations,
            duration,
        }
    }

    /// An empty trace with the given horizon.
    pub fn empty(duration: SimTime) -> Self {
        InvocationTrace {
            invocations: Vec::new(),
            duration,
        }
    }

    /// Number of invocations.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// `true` when the trace has no invocations.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// The trace horizon (simulation end time).
    pub fn duration(&self) -> SimTime {
        self.duration
    }

    /// Iterates over invocations in firing order.
    pub fn iter(&self) -> impl Iterator<Item = &Invocation> + '_ {
        self.invocations.iter()
    }

    /// Invocations of one function, in firing order.
    pub fn for_function(&self, function: FunctionId) -> Vec<Invocation> {
        self.invocations
            .iter()
            .filter(|i| i.function == function)
            .copied()
            .collect()
    }

    /// The distinct functions appearing in the trace, ascending.
    pub fn functions(&self) -> Vec<FunctionId> {
        let mut ids: Vec<FunctionId> = self.invocations.iter().map(|i| i.function).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Merges two traces over the same horizon.
    ///
    /// # Panics
    ///
    /// Panics if the horizons differ.
    pub fn merge(&self, other: &InvocationTrace) -> InvocationTrace {
        assert_eq!(self.duration, other.duration, "traces must share a horizon");
        let mut all = self.invocations.clone();
        all.extend_from_slice(&other.invocations);
        InvocationTrace::from_invocations(all, self.duration)
    }

    /// Statistics over the trace: request rate and inter-arrival spread.
    pub fn stats(&self) -> TraceStats {
        let intervals: Vec<f64> = self
            .invocations
            .windows(2)
            .map(|w| w[1].at.saturating_since(w[0].at).as_secs_f64())
            .collect();
        let interval_cdf = Cdf::from_samples(intervals);
        let minutes = self.duration.as_secs_f64() / 60.0;
        TraceStats {
            invocations: self.invocations.len(),
            req_per_min: if minutes > 0.0 {
                self.invocations.len() as f64 / minutes
            } else {
                0.0
            },
            mean_interval_secs: interval_cdf.mean().unwrap_or(0.0),
            interval_std_secs: interval_cdf.std_dev().unwrap_or(0.0),
        }
    }
}

/// Summary statistics of a trace (Fig 16's x-axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Total invocations.
    pub invocations: usize,
    /// Mean request rate in requests per minute.
    pub req_per_min: f64,
    /// Mean inter-arrival gap in seconds.
    pub mean_interval_secs: f64,
    /// Standard deviation (σ) of inter-arrival gaps in seconds — the
    /// paper's burstiness proxy in Fig 16.
    pub interval_std_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(secs: u64, f: u32) -> Invocation {
        Invocation {
            at: SimTime::from_secs(secs),
            function: FunctionId(f),
        }
    }

    #[test]
    fn construction_sorts() {
        let t = InvocationTrace::from_invocations(
            vec![inv(5, 0), inv(1, 1), inv(3, 0)],
            SimTime::from_secs(10),
        );
        let times: Vec<u64> = t.iter().map(|i| i.at.as_micros() / 1_000_000).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn invocation_past_horizon_panics() {
        let _ = InvocationTrace::from_invocations(vec![inv(11, 0)], SimTime::from_secs(10));
    }

    #[test]
    fn per_function_filtering() {
        let t = InvocationTrace::from_invocations(
            vec![inv(1, 0), inv(2, 1), inv(3, 0)],
            SimTime::from_secs(10),
        );
        assert_eq!(t.for_function(FunctionId(0)).len(), 2);
        assert_eq!(t.for_function(FunctionId(1)).len(), 1);
        assert_eq!(t.for_function(FunctionId(9)).len(), 0);
        assert_eq!(t.functions(), vec![FunctionId(0), FunctionId(1)]);
    }

    #[test]
    fn merge_interleaves() {
        let a = InvocationTrace::from_invocations(vec![inv(1, 0)], SimTime::from_secs(10));
        let b = InvocationTrace::from_invocations(vec![inv(2, 1)], SimTime::from_secs(10));
        let m = a.merge(&b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.functions().len(), 2);
    }

    #[test]
    #[should_panic(expected = "share a horizon")]
    fn merge_horizon_mismatch_panics() {
        let a = InvocationTrace::empty(SimTime::from_secs(10));
        let b = InvocationTrace::empty(SimTime::from_secs(20));
        let _ = a.merge(&b);
    }

    #[test]
    fn stats_on_regular_trace() {
        // One request every 30 s over an hour: 2 req/min, σ = 0.
        let invs: Vec<Invocation> = (0..120).map(|i| inv(i * 30, 0)).collect();
        let t = InvocationTrace::from_invocations(invs, SimTime::from_mins(60));
        let s = t.stats();
        assert_eq!(s.invocations, 120);
        assert!((s.req_per_min - 2.0).abs() < 1e-9);
        assert!((s.mean_interval_secs - 30.0).abs() < 1e-9);
        assert!(s.interval_std_secs.abs() < 1e-9);
    }

    #[test]
    fn stats_on_empty_trace() {
        let t = InvocationTrace::empty(SimTime::from_mins(1));
        let s = t.stats();
        assert_eq!(s.invocations, 0);
        assert_eq!(s.req_per_min, 0.0);
        assert!(t.is_empty());
    }
}
