//! Plain-text (CSV) trace interchange.
//!
//! The paper's artifact exchanges invocation traces as flat files; this
//! module provides the equivalent here so synthesized traces can be
//! saved, diffed, and replayed across runs and tools. The format is one
//! `timestamp_micros,function_id` pair per line, with a
//! `# horizon_micros=N` header:
//!
//! ```text
//! # faasmem-trace v1 horizon_micros=60000000
//! 1000000,0
//! 2500000,1
//! ```

use std::error::Error;
use std::fmt;

use faasmem_sim::SimTime;

use crate::trace::{FunctionId, Invocation, InvocationTrace};

/// Errors produced when parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseTraceError {
    /// The `# faasmem-trace v1 horizon_micros=N` header is missing or
    /// malformed.
    BadHeader,
    /// A data line is not `micros,function`.
    BadLine {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// An invocation timestamp exceeds the declared horizon.
    BeyondHorizon {
        /// 1-based line number of the offending line.
        line: usize,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::BadHeader => write!(f, "missing or malformed trace header"),
            ParseTraceError::BadLine { line } => write!(f, "malformed invocation at line {line}"),
            ParseTraceError::BeyondHorizon { line } => {
                write!(f, "invocation beyond declared horizon at line {line}")
            }
        }
    }
}

impl Error for ParseTraceError {}

/// Serializes a trace to the v1 text format.
///
/// # Examples
///
/// ```
/// use faasmem_workload::{trace_io, FunctionId, Invocation, InvocationTrace};
/// use faasmem_sim::SimTime;
///
/// let trace = InvocationTrace::from_invocations(
///     vec![Invocation { at: SimTime::from_secs(1), function: FunctionId(2) }],
///     SimTime::from_secs(10),
/// );
/// let text = trace_io::to_string(&trace);
/// let back = trace_io::from_str(&text).unwrap();
/// assert_eq!(trace, back);
/// ```
pub fn to_string(trace: &InvocationTrace) -> String {
    let mut out = String::with_capacity(trace.len() * 16 + 64);
    out.push_str(&format!(
        "# faasmem-trace v1 horizon_micros={}\n",
        trace.duration().as_micros()
    ));
    for inv in trace.iter() {
        out.push_str(&format!("{},{}\n", inv.at.as_micros(), inv.function.0));
    }
    out
}

/// Parses a trace from the v1 text format.
///
/// # Errors
///
/// Returns [`ParseTraceError`] when the header is missing, a line is
/// malformed, or a timestamp exceeds the declared horizon.
pub fn from_str(text: &str) -> Result<InvocationTrace, ParseTraceError> {
    parse_with(text, Err)
}

/// A leniently-parsed trace: malformed data lines were skipped, not
/// rejected, and the count of skipped lines is reported alongside.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyTrace {
    /// The trace built from the lines that did parse.
    pub trace: InvocationTrace,
    /// How many data lines were malformed or beyond the horizon.
    pub skipped_lines: u64,
}

/// Parses a trace from the v1 text format, skipping malformed data lines
/// instead of failing on them.
///
/// A missing or malformed header is still a hard error — without the
/// declared horizon nothing in the file is interpretable. Lines that are
/// not `micros,function` or whose timestamp exceeds the horizon are
/// counted in [`LossyTrace::skipped_lines`] and otherwise ignored.
///
/// # Errors
///
/// Returns [`ParseTraceError::BadHeader`] only.
///
/// # Examples
///
/// ```
/// use faasmem_workload::trace_io;
///
/// let text = "# faasmem-trace v1 horizon_micros=1000\n5,0\njunk\n900,1\n";
/// let lossy = trace_io::from_str_lossy(text).unwrap();
/// assert_eq!(lossy.trace.len(), 2);
/// assert_eq!(lossy.skipped_lines, 1);
/// ```
pub fn from_str_lossy(text: &str) -> Result<LossyTrace, ParseTraceError> {
    let mut skipped_lines = 0u64;
    let trace = parse_with(text, |_| {
        skipped_lines += 1;
        Ok(())
    })?;
    Ok(LossyTrace {
        trace,
        skipped_lines,
    })
}

/// The shared parse loop. `on_bad_line` decides whether a per-line error
/// aborts the parse (strict) or is swallowed (lossy); header errors always
/// abort.
fn parse_with(
    text: &str,
    mut on_bad_line: impl FnMut(ParseTraceError) -> Result<(), ParseTraceError>,
) -> Result<InvocationTrace, ParseTraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(ParseTraceError::BadHeader)?;
    let horizon_micros: u64 = header
        .strip_prefix("# faasmem-trace v1 horizon_micros=")
        .and_then(|v| v.trim().parse().ok())
        .ok_or(ParseTraceError::BadHeader)?;
    let horizon = SimTime::from_micros(horizon_micros);
    let mut invocations = Vec::new();
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((at, function)) = line.split_once(',').and_then(|(a, f)| {
            Some((a.trim().parse::<u64>().ok()?, f.trim().parse::<u32>().ok()?))
        }) else {
            on_bad_line(ParseTraceError::BadLine { line: idx + 1 })?;
            continue;
        };
        if at > horizon_micros {
            on_bad_line(ParseTraceError::BeyondHorizon { line: idx + 1 })?;
            continue;
        }
        invocations.push(Invocation {
            at: SimTime::from_micros(at),
            function: FunctionId(function),
        });
    }
    Ok(InvocationTrace::from_invocations(invocations, horizon))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoadClass, TraceSynthesizer};

    #[test]
    fn roundtrip_synthesized_trace() {
        let trace = TraceSynthesizer::new(3)
            .load_class(LoadClass::High)
            .duration(SimTime::from_mins(10))
            .synthesize_for(FunctionId(7));
        let text = to_string(&trace);
        let back = from_str(&text).expect("roundtrip");
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = InvocationTrace::empty(SimTime::from_secs(5));
        let back = from_str(&to_string(&trace)).unwrap();
        assert_eq!(trace, back);
        assert_eq!(back.duration(), SimTime::from_secs(5));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# faasmem-trace v1 horizon_micros=10000000\n\n# a comment\n100,1\n";
        let t = from_str(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.iter().next().unwrap().function, FunctionId(1));
    }

    #[test]
    fn missing_header_is_error() {
        assert_eq!(from_str("100,1\n"), Err(ParseTraceError::BadHeader));
        assert_eq!(from_str(""), Err(ParseTraceError::BadHeader));
    }

    #[test]
    fn malformed_line_is_error_with_location() {
        let text = "# faasmem-trace v1 horizon_micros=1000\nnot-a-line\n";
        assert_eq!(from_str(text), Err(ParseTraceError::BadLine { line: 2 }));
        let text = "# faasmem-trace v1 horizon_micros=1000\n5,\n";
        assert_eq!(from_str(text), Err(ParseTraceError::BadLine { line: 2 }));
    }

    #[test]
    fn beyond_horizon_is_error() {
        let text = "# faasmem-trace v1 horizon_micros=1000\n2000,0\n";
        assert_eq!(
            from_str(text),
            Err(ParseTraceError::BeyondHorizon { line: 2 })
        );
    }

    #[test]
    fn lossy_skips_and_counts_bad_lines() {
        let text = "# faasmem-trace v1 horizon_micros=1000\n\
                    5,0\nnot-a-line\n2000,1\n900,2\n";
        let lossy = from_str_lossy(text).expect("header is fine");
        assert_eq!(lossy.trace.len(), 2);
        assert_eq!(lossy.skipped_lines, 2);
        // The surviving invocations are exactly the parseable in-horizon ones.
        let funcs: Vec<u32> = lossy.trace.iter().map(|i| i.function.0).collect();
        assert_eq!(funcs, vec![0, 2]);
    }

    #[test]
    fn lossy_still_rejects_bad_header() {
        assert_eq!(from_str_lossy("100,1\n"), Err(ParseTraceError::BadHeader));
    }

    #[test]
    fn lossy_matches_strict_on_clean_input() {
        let trace = TraceSynthesizer::new(9)
            .load_class(LoadClass::Middle)
            .duration(SimTime::from_mins(5))
            .synthesize_for(FunctionId(1));
        let text = to_string(&trace);
        let lossy = from_str_lossy(&text).unwrap();
        assert_eq!(lossy.skipped_lines, 0);
        assert_eq!(lossy.trace, from_str(&text).unwrap());
    }

    #[test]
    fn errors_display_meaningfully() {
        assert!(ParseTraceError::BadHeader.to_string().contains("header"));
        assert!(ParseTraceError::BadLine { line: 3 }
            .to_string()
            .contains('3'));
        assert!(ParseTraceError::BeyondHorizon { line: 4 }
            .to_string()
            .contains('4'));
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip_arbitrary(
            pairs in proptest::collection::vec((0u64..1_000_000, 0u32..50), 0..200),
        ) {
            let invs: Vec<Invocation> = pairs
                .iter()
                .map(|&(at, f)| Invocation {
                    at: SimTime::from_micros(at),
                    function: FunctionId(f),
                })
                .collect();
            let trace = InvocationTrace::from_invocations(invs, SimTime::from_micros(1_000_000));
            let back = from_str(&to_string(&trace)).unwrap();
            proptest::prop_assert_eq!(trace, back);
        }
    }
}
