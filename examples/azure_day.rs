//! A production-shaped day: a 424-function Azure-like cluster on one
//! compute node for four hours, with the full stack enabled — FaaSMem
//! offloading, adaptive keep-alive and runtime sharing — reported hour by
//! hour, plus the rack-provisioning summary a capacity planner would
//! derive from the run.
//!
//! ```text
//! cargo run --release --example azure_day
//! ```

use faasmem::core::FaasMemPolicy;
use faasmem::faas::{AdaptiveKeepAlive, NodeProfile, RackPlan, RackReport};
use faasmem::prelude::*;

fn main() {
    const FUNCTIONS: u32 = 424;
    let horizon = SimTime::from_mins(240);
    let (trace, classes) = TraceSynthesizer::new(20_260_706)
        .duration(horizon)
        .synthesize_cluster(FUNCTIONS);
    let highs = classes
        .iter()
        .filter(|(_, c)| *c == LoadClass::High)
        .count();
    let lows = classes.iter().filter(|(_, c)| *c == LoadClass::Low).count();
    println!(
        "cluster: {FUNCTIONS} functions ({highs} high / {} middle / {lows} low), {} invocations over 4 h",
        FUNCTIONS as usize - highs - lows,
        trace.len()
    );

    // Map every function onto the micro-benchmark catalog round-robin,
    // with the three applications sprinkled in.
    let catalog = BenchmarkSpec::catalog();
    let policy = FaasMemPolicy::builder().build();
    let stats = policy.stats();
    let mut builder = PlatformSim::builder()
        .share_runtime(true)
        .adaptive_keep_alive(AdaptiveKeepAlive::default())
        .seed(1);
    for f in 0..FUNCTIONS {
        builder = builder.register_function(catalog[f as usize % catalog.len()].clone());
    }
    let mut sim = builder.policy(policy).build();
    let mut report = sim.run(&trace);

    println!("\nhour-by-hour node memory (local GiB, sampled every 15 min):");
    let samples = report
        .local_mem
        .sample(SimDuration::from_mins(15), report.finished_at);
    for hour in 0..4 {
        let window: Vec<String> = samples
            .iter()
            .filter(|(t, _)| {
                *t >= SimTime::from_mins(hour * 60) && *t < SimTime::from_mins((hour + 1) * 60)
            })
            .map(|(_, v)| format!("{:.2}", v / (1024.0 * 1024.0 * 1024.0)))
            .collect();
        println!("  hour {hour}: {}", window.join(" "));
    }

    let p95 = report.p95_latency();
    println!("\nday summary:");
    println!("  requests completed:  {}", report.requests_completed);
    println!(
        "  cold-start ratio:    {:.1}%",
        report.cold_start_ratio() * 100.0
    );
    println!(
        "  avg local memory:    {:.2} GiB",
        report.avg_local_mib() / 1024.0
    );
    println!(
        "  avg pooled memory:   {:.2} GiB",
        report.avg_remote_mib() / 1024.0
    );
    println!("  P95 latency:         {p95}");
    println!("  containers launched: {}", report.containers.len());
    let st = stats.borrow();
    println!(
        "  semi-warm drained:   {:.2} GiB over {} containers ({} rollbacks)",
        st.semi_warm_bytes as f64 / (1024.0 * 1024.0 * 1024.0),
        st.semi_warm_records.len(),
        st.rollbacks
    );

    // What a capacity planner takes away from this run.
    let node = NodeProfile::from_report(&report, 384.0, 2_500.0);
    let rack = RackReport::analyze(node, RackPlan::default());
    println!("\nrack plan from this profile (10 nodes, 2500 containers each):");
    println!(
        "  remote bandwidth demand: {:.0} Gbps ({:.0}% of a 400 Gbps NIC)",
        rack.demand_gbps,
        rack.fabric_utilization * 100.0
    );
    println!(
        "  pool to provision:       {:.1} TB",
        rack.pool_gib / 1024.0
    );
    println!(
        "  DRAM cost vs all-local:  {:.0}%",
        rack.relative_dram_cost * 100.0
    );
}
