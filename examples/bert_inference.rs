//! ML-inference scenario: a BERT serving function under a bursty trace,
//! comparing all three systems of the paper (Baseline / TMO / FaaSMem).
//!
//! This is the paper's flagship application: ~900 MiB of model state in
//! the init segment, ~400 MiB of it hot in every request, 1-core
//! containers, ~140 ms requests. Bursts strand keep-alive containers
//! holding gigabytes — exactly the situation semi-warm targets.
//!
//! ```text
//! cargo run --release --example bert_inference
//! ```

use faasmem::core::FaasMemPolicy;
use faasmem::prelude::*;

fn run_with<P>(policy: P, trace: &InvocationTrace) -> RunReport
where
    P: MemoryPolicy + 'static,
{
    let mut sim = PlatformSim::builder()
        .register_function(BenchmarkSpec::by_name("bert").expect("catalog"))
        .policy(policy)
        .seed(99)
        .build();
    sim.run(trace)
}

fn main() {
    let trace = TraceSynthesizer::new(11)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    println!("bursty bert trace: {} invocations / hour\n", trace.len());

    let faasmem_policy = FaasMemPolicy::builder().build();
    let stats = faasmem_policy.stats();
    let reports = vec![
        run_with(NoOffloadPolicy, &trace),
        run_with(TmoPolicy::default(), &trace),
        run_with(faasmem_policy, &trace),
    ];

    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "system", "avg mem", "peak mem", "P95", "offloaded", "recalled"
    );
    for mut report in reports {
        let peak = report.local_mem.max_value().unwrap_or(0.0) / (1024.0 * 1024.0);
        let p95 = report.p95_latency().to_string();
        println!(
            "{:<10} {:>8.0}Mi {:>8.0}Mi {:>10} {:>10.1}Mi {:>10.1}Mi",
            report.policy,
            report.avg_local_mib(),
            peak,
            p95,
            report.pool_stats.bytes_out as f64 / (1024.0 * 1024.0),
            report.pool_stats.bytes_in as f64 / (1024.0 * 1024.0),
        );
    }

    let stats = stats.borrow();
    println!();
    println!("FaaSMem mechanism detail:");
    println!("  rollbacks performed:        {}", stats.rollbacks);
    println!(
        "  semi-warm drained:          {:.1} MiB",
        stats.semi_warm_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  request windows chosen:     {:?}",
        stats
            .windows_chosen
            .iter()
            .map(|&(_, w)| w)
            .collect::<Vec<_>>()
    );
    let fractions = stats.semi_warm_fractions();
    let spent_half = fractions.iter().filter(|&&f| f > 0.5).count();
    println!(
        "  containers >50% semi-warm:  {spent_half} of {}",
        fractions.len()
    );
}
