//! Capacity planning with the memory-pool architecture (paper §8.6 + §9).
//!
//! A provider sizing a compute node asks: with FaaSMem offloading to a
//! rack-level memory pool, how many more containers fit per node, how
//! much pool memory should the rack provision, and does the interconnect
//! have the bandwidth? This example answers all three for the paper's
//! three applications on a 384 GB node.
//!
//! ```text
//! cargo run --release --example density_planning
//! ```

use faasmem::faas::estimate_density;
use faasmem::prelude::*;

const NODE_DRAM_GIB: f64 = 384.0;
const NODES_PER_RACK: f64 = 10.0;

fn main() {
    println!(
        "{:<8} {:>8} {:>12} {:>10} {:>12} {:>14} {:>12}",
        "app", "quota", "offload/ctr", "density", "ctrs/node", "pool GiB/node", "bw/node"
    );
    let mut total_pool = 0.0;
    for app in ["bert", "graph", "web"] {
        let spec = BenchmarkSpec::by_name(app).expect("catalog");
        let trace = TraceSynthesizer::new(86)
            .load_class(LoadClass::High)
            .bursty(true)
            .duration(SimTime::from_mins(60))
            .synthesize_for(FunctionId(0));
        let policy = FaasMemPolicy::builder().build();
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .policy(policy)
            .seed(3)
            .build();
        let report = sim.run(&trace);
        let density = estimate_density(&report, &spec);

        // Containers per node: DRAM divided by the *effective* quota.
        let baseline_ctrs = NODE_DRAM_GIB * 1024.0 / spec.quota_mib as f64;
        let ctrs = baseline_ctrs * density.improvement;
        // Pool provisioning: each container parks its reducible quota
        // remotely.
        let pool_gib = ctrs * density.offloaded_per_container_mib / 1024.0;
        total_pool += pool_gib;
        // Bandwidth: scale the measured per-run offload bandwidth to the
        // planned container count.
        let per_ctr_bw =
            report.mean_offload_bandwidth_mbps() / report.avg_live_containers().max(1e-9);
        let node_bw = per_ctr_bw * ctrs;
        println!(
            "{:<8} {:>6}Mi {:>10.0}Mi {:>9.2}x {:>12.0} {:>14.0} {:>9.0}MB/s",
            app,
            spec.quota_mib,
            density.offloaded_per_container_mib,
            density.improvement,
            ctrs,
            pool_gib,
            node_bw,
        );
    }
    println!();
    println!("rack-level view ({NODES_PER_RACK} nodes/rack, one pool per rack — paper §9):");
    println!(
        "  pool memory needed per rack (if nodes run a mix): ~{:.1} TiB",
        total_pool / 3.0 * NODES_PER_RACK / 1024.0
    );
    println!("  paper's guidance: local:remote ~ 1:0.8, i.e. ~3 TB pool per 10-node rack;");
    println!("  a 400 Gbps RDMA NIC comfortably covers the aggregate offload bandwidth.");
}
