//! A multi-tenant compute node: all 11 paper benchmarks co-located on one
//! node, each with its own invocation pattern, all managed by one
//! FaaSMem policy instance sharing one remote pool and one bandwidth
//! governor — the deployment §6.2's bandwidth control exists for.
//!
//! ```text
//! cargo run --release --example multi_tenant_node
//! ```

use faasmem::core::FaasMemPolicy;
use faasmem::prelude::*;

fn main() {
    let specs = BenchmarkSpec::catalog();
    let horizon = SimTime::from_mins(60);

    // Per-function traces with diverse load classes, merged into one
    // node-level arrival stream.
    let mut merged = InvocationTrace::empty(horizon);
    for (i, spec) in specs.iter().enumerate() {
        let class = match i % 3 {
            0 => LoadClass::High,
            1 => LoadClass::Middle,
            _ => LoadClass::Low,
        };
        let t = TraceSynthesizer::new(500 + i as u64)
            .load_class(class)
            .bursty(i % 2 == 0)
            .duration(horizon)
            .synthesize_for(FunctionId(i as u32));
        println!(
            "  {:<10} {:<7} {:>5} invocations",
            spec.name,
            class.name(),
            t.len()
        );
        merged = merged.merge(&t);
    }
    println!("node total: {} invocations\n", merged.len());

    let policy = FaasMemPolicy::builder().build();
    let mut sim = PlatformSim::builder()
        .register_functions(specs.iter().cloned())
        .policy(policy)
        .seed(4)
        .build();
    let mut report = sim.run(&merged);

    println!("node-level results under FaaSMem:");
    println!("  requests completed:   {}", report.requests_completed);
    println!(
        "  cold-start ratio:     {:.1}%",
        report.cold_start_ratio() * 100.0
    );
    println!(
        "  avg local memory:     {:.2} GiB",
        report.avg_local_mib() / 1024.0
    );
    println!(
        "  avg offloaded:        {:.2} GiB",
        report.avg_remote_mib() / 1024.0
    );
    println!("  P95 latency:          {}", report.p95_latency());
    println!(
        "  peak local memory:    {:.2} GiB",
        report.local_mem.max_value().unwrap_or(0.0) / (1024.0 * 1024.0 * 1024.0)
    );

    // Per-function view: which workloads offload best?
    println!("\nper-function P95 / fault load:");
    for summary in report.per_function_summaries() {
        let spec = &specs[summary.function.0 as usize];
        println!(
            "  {:<10} P95 {:>10}   requests {:>5}   cold {:>3}   faults {:>6}",
            spec.name,
            summary.latency.p95.to_string(),
            summary.requests,
            summary.cold_starts,
            summary.faults
        );
    }
}
