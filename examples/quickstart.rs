//! Quickstart: run one serverless function under FaaSMem and see the
//! memory it saves.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use faasmem::prelude::*;

fn main() {
    // 1. Pick a workload model: the `json` FunctionBench micro-benchmark
    //    (30 MiB Python runtime, tiny init segment, ~35 ms requests).
    let spec = BenchmarkSpec::by_name("json").expect("catalog benchmark");

    // 2. Synthesize an Azure-like invocation trace: one hour, high load.
    let trace = TraceSynthesizer::new(7)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0));
    println!("trace: {} invocations over one hour", trace.len());

    // 3. Run the platform twice: no offloading vs FaaSMem.
    let mut baseline = PlatformSim::builder()
        .register_function(spec.clone())
        .policy(NoOffloadPolicy)
        .seed(1)
        .build();
    let mut base_report = baseline.run(&trace);

    let mut faasmem = PlatformSim::builder()
        .register_function(spec)
        .policy(FaasMemPolicy::builder().build())
        .seed(1)
        .build();
    let mut faasmem_report = faasmem.run(&trace);

    // 4. Compare: FaaSMem should cut average local memory by well over
    //    half (the cold Python runtime goes remote after request #1)
    //    while leaving P95 latency essentially untouched.
    let base_mem = base_report.avg_local_mib();
    let faasmem_mem = faasmem_report.avg_local_mib();
    let base_p95 = base_report.p95_latency();
    let faasmem_p95 = faasmem_report.p95_latency();
    println!(
        "avg local memory: baseline {base_mem:.1} MiB -> FaaSMem {faasmem_mem:.1} MiB ({:+.1}%)",
        (faasmem_mem - base_mem) / base_mem * 100.0
    );
    println!("P95 latency:      baseline {base_p95} -> FaaSMem {faasmem_p95}");
    println!(
        "remote traffic:   {:.1} MiB out, {:.1} MiB recalled",
        faasmem_report.pool_stats.bytes_out as f64 / (1024.0 * 1024.0),
        faasmem_report.pool_stats.bytes_in as f64 / (1024.0 * 1024.0),
    );
    assert!(
        faasmem_mem < base_mem * 0.6,
        "FaaSMem should save >40% here"
    );
}
