//! Trace interchange: synthesize a workload, save it to a file, reload
//! it, and replay it bit-identically — the workflow for sharing
//! regression workloads between machines (the paper's artifact ships its
//! traces as flat files the same way).
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use std::fs;

use faasmem::prelude::*;
use faasmem::workload::trace_io;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Synthesize and persist a trace.
    let trace = TraceSynthesizer::new(1234)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(20))
        .synthesize_for(FunctionId(0));
    let path = std::env::temp_dir().join("faasmem-example-trace.txt");
    fs::write(&path, trace_io::to_string(&trace))?;
    println!("saved {} invocations to {}", trace.len(), path.display());

    // 2. Reload and verify.
    let restored = trace_io::from_str(&fs::read_to_string(&path)?)?;
    assert_eq!(trace, restored);
    let stats = restored.stats();
    println!(
        "reloaded: {:.1} req/min, σ(intervals) {:.1}s",
        stats.req_per_min, stats.interval_std_secs
    );

    // 3. Replay under FaaSMem; the run is deterministic, so this output
    //    is reproducible on any machine holding the same trace file.
    let mut sim = PlatformSim::builder()
        .register_function(BenchmarkSpec::by_name("chameleon").unwrap())
        .policy(FaasMemPolicy::builder().build())
        .seed(42)
        .build();
    let mut report = sim.run(&restored);
    let p95 = report.p95_latency();
    println!(
        "replay: {} requests, avg local {:.1} MiB, P95 {}",
        report.requests_completed,
        report.avg_local_mib(),
        p95
    );
    fs::remove_file(&path)?;
    Ok(())
}
