#![warn(missing_docs)]

//! # FaaSMem — memory-pool offloading for serverless computing
//!
//! A comprehensive Rust reproduction of *"FaaSMem: Improving Memory
//! Efficiency of Serverless Computing with Memory Pool Architecture"*
//! (Xu et al., ASPLOS 2024) as a deterministic, page-level discrete-event
//! simulator.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event engine (time, events, RNG).
//! * [`mem`] — page tables, MGLRU-style generations, cgroup accounting.
//! * [`pool`] — the remote memory pool: RDMA link model, bandwidth governor.
//! * [`metrics`] — latency percentiles, CDFs, time-weighted memory series.
//! * [`workload`] — the 11 paper benchmarks and Azure-like trace synthesis.
//! * [`faas`] — the serverless platform: containers, keep-alive, routing.
//! * [`core`] — the FaaSMem mechanism itself: Puckets, segment-wise
//!   offloading policies, the hot page pool and the semi-warm period.
//! * [`baselines`] — NoOffload, TMO-like and DAMON-like baseline policies.
//! * [`trace`] — deterministic event tracing: typed sim-time events,
//!   pluggable sinks, JSONL and Chrome/Perfetto export.
//!
//! # Quickstart
//!
//! ```
//! use faasmem::prelude::*;
//!
//! // A one-minute run of the `json` micro-benchmark under FaaSMem.
//! let spec = BenchmarkSpec::catalog()
//!     .iter()
//!     .find(|s| s.name == "json")
//!     .cloned()
//!     .unwrap();
//! let trace = TraceSynthesizer::new(7)
//!     .load_class(LoadClass::High)
//!     .duration(SimTime::from_mins(1))
//!     .synthesize_for(FunctionId(0));
//! let mut sim = PlatformSim::builder()
//!     .register_function(spec)
//!     .policy(FaasMemPolicy::builder().build())
//!     .build();
//! let report = sim.run(&trace);
//! assert!(report.requests_completed > 0);
//! ```

pub use faasmem_baselines as baselines;
pub use faasmem_core as core;
pub use faasmem_faas as faas;
pub use faasmem_mem as mem;
pub use faasmem_metrics as metrics;
pub use faasmem_pool as pool;
pub use faasmem_sim as sim;
pub use faasmem_trace as trace;
pub use faasmem_workload as workload;

/// One-stop imports for examples and downstream experiments.
pub mod prelude {
    pub use faasmem_baselines::{DamonPolicy, NoOffloadPolicy, TmoPolicy};
    pub use faasmem_core::{FaasMemConfig, FaasMemPolicy, SemiWarmConfig};
    pub use faasmem_faas::{
        AdaptiveKeepAlive, FunctionId, FunctionSummary, MemoryPolicy, PlatformConfig, PlatformSim,
        RunReport,
    };
    pub use faasmem_mem::{MemStats, PageTable, Segment, PAGE_SIZE_4K};
    pub use faasmem_metrics::{Cdf, LatencyRecorder, LatencySummary, TimeSeries};
    pub use faasmem_pool::{PoolConfig, RemotePool};
    pub use faasmem_sim::{SimDuration, SimRng, SimTime};
    pub use faasmem_trace::{EventKind, LayerMask, TraceEvent, TraceLayer, Tracer};
    pub use faasmem_workload::{BenchmarkSpec, InvocationTrace, LoadClass, TraceSynthesizer};
}
