//! Zero steady-state allocation on the event hot path (ISSUE 10).
//!
//! The calendar queue, the sharded window machinery and the platform
//! tick handler all reuse run-long buffers, so once a workload's
//! geometry has settled, a pop-one/push-one churn and a window
//! open/drain/flush cycle must perform **zero** heap allocations. A
//! counting global allocator measures exactly that: warm the structure
//! through several full cycles at the identical operation mix, switch
//! the counter on, run the same mix again, and assert the count stayed
//! at zero.
//!
//! One `#[test]` drives every scenario — the counter is process-global,
//! so concurrent test threads would attribute each other's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use faasmem_sim::{EventQueue, ShardedEventQueue, SimDuration, SimTime};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed and returns how many
/// allocations (malloc/calloc/realloc) it performed.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let r = f();
    COUNTING.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), r)
}

/// Pop-one/push-one hold churn: the event-loop shape. Deterministic
/// deltas, so warmup and measurement run the identical mix.
fn queue_churn(q: &mut EventQueue<u64>, ops: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..ops {
        let (at, ev) = q.pop().expect("hold population never drains");
        acc = acc.wrapping_add(ev);
        let delta = 500 + (i as u64 % 97) * 31;
        q.push(at + SimDuration::from_micros(delta), ev);
    }
    acc
}

/// One window generation: open, drain, re-push every popped event,
/// flush. Most events re-arm on their own shard (the timer-heavy shape
/// of a real drain); a fixed subset hops to the next shard each time it
/// fires, keeping the outbox and the barrier redelivery exercised.
///
/// The mix is chosen to be time-translation periodic: a constant delta
/// and a stable per-shard resident population, so every buffer's
/// high-water mark converges during warmup. A drifting delta or an
/// all-migrating population keeps setting new high-water marks (or
/// thrashes the ring's shrink/grow hysteresis) forever — amortized
/// zero, but not the strict zero asserted here.
fn window_churn(q: &mut ShardedEventQueue<u64>, windows: usize) {
    for _ in 0..windows {
        if q.begin_window(SimDuration::from_micros(2_000)).is_none() {
            panic!("hold population never drains");
        }
        while let Some((at, ev)) = q.pop_window() {
            let origin = q.current_shard();
            let target = if ev % 8 == 0 {
                (origin + 1) % 4
            } else {
                origin
            };
            q.push_from(origin, target, at + SimDuration::from_micros(700), ev);
        }
        q.flush_window();
    }
}

#[test]
fn event_hot_path_allocates_nothing_at_steady_state() {
    // -- Serial calendar queue under hold churn --------------------
    let mut q: EventQueue<u64> = EventQueue::with_capacity(1024);
    for i in 0..1024u64 {
        q.push(SimTime::from_micros(i * 50), i);
    }
    // Warm through several ring laps and any self-tuning re-layouts.
    queue_churn(&mut q, 50_000);
    let (allocs, _) = allocations_during(|| queue_churn(&mut q, 50_000));
    assert_eq!(
        allocs, 0,
        "steady-state EventQueue churn must not allocate (got {allocs} allocations over 50k ops)"
    );

    // -- Grouped same-instant delivery ------------------------------
    // Group moves land on buckets whose capacity the warmup set; the
    // steady loop reuses it.
    fn group_churn(gq: &mut EventQueue<u64>, rounds: usize) {
        for r in 0..rounds {
            let at = SimTime::from_micros(r as u64 * 300);
            gq.push_at_many(at, 0u64..64);
            for _ in 0..64 {
                gq.pop().expect("just pushed");
            }
        }
    }
    let mut gq: EventQueue<u64> = EventQueue::with_capacity(1024);
    group_churn(&mut gq, 2_000);
    let (allocs, _) = allocations_during(|| group_churn(&mut gq, 2_000));
    assert_eq!(
        allocs, 0,
        "steady-state grouped push/drain must not allocate (got {allocs} allocations)"
    );

    // -- Sharded window machinery ----------------------------------
    // The outbox is drained in place and handed back each barrier, and
    // each shard's calendar geometry settles during warmup, so a
    // steady stream of windows — including cross-shard parking and
    // stamped redelivery — is allocation-free.
    let mut sq: ShardedEventQueue<u64> = ShardedEventQueue::new(4);
    for i in 0..2048u64 {
        sq.push_from(0, (i % 4) as u32, SimTime::from_micros(i * 40), i);
    }
    // Warm long enough for one-shot capacity growths (rebuild scratch,
    // bucket high-water marks, outbox) to happen before counting.
    window_churn(&mut sq, 1_600);
    let before = sq.cross_events();
    let (allocs, _) = allocations_during(|| window_churn(&mut sq, 400));
    assert!(
        sq.cross_events() > before,
        "the measured phase must route events through the outbox"
    );
    assert_eq!(
        allocs, 0,
        "steady-state sharded window churn must not allocate (got {allocs} allocations)"
    );
}
