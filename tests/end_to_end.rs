//! End-to-end integration tests across the whole workspace: the platform,
//! the FaaSMem policy, the baselines and the workload models together.

use faasmem::prelude::*;
use std::collections::HashMap;

fn trace_for(seed: u64, class: LoadClass, mins: u64) -> InvocationTrace {
    TraceSynthesizer::new(seed)
        .load_class(class)
        .duration(SimTime::from_mins(mins))
        .synthesize_for(FunctionId(0))
}

fn run_policy_on(spec: &BenchmarkSpec, trace: &InvocationTrace, policy_name: &str) -> RunReport {
    let builder = PlatformSim::builder()
        .register_function(spec.clone())
        .seed(17);
    let mut sim = match policy_name {
        "Baseline" => builder.policy(NoOffloadPolicy).build(),
        "TMO" => builder.policy(TmoPolicy::default()).build(),
        "DAMON" => builder.policy(DamonPolicy::default()).build(),
        "FaaSMem" => builder.policy(FaasMemPolicy::builder().build()).build(),
        other => panic!("unknown policy {other}"),
    };
    sim.run(trace)
}

#[test]
fn every_benchmark_completes_under_faasmem() {
    let trace = trace_for(1, LoadClass::High, 10);
    for spec in BenchmarkSpec::catalog() {
        let report = run_policy_on(&spec, &trace, "FaaSMem");
        assert_eq!(
            report.requests_completed,
            trace.len(),
            "{}: all requests must complete",
            spec.name
        );
        assert!(
            report.cold_starts >= 1,
            "{}: first request cold-starts",
            spec.name
        );
        assert!(
            report.pool_stats.bytes_out > 0,
            "{}: FaaSMem must offload",
            spec.name
        );
    }
}

#[test]
fn memory_accounting_is_conserved() {
    // At every recorded instant, local + remote must never exceed what
    // the live containers could possibly hold, and the run must end with
    // everything released.
    let spec = BenchmarkSpec::by_name("web").unwrap();
    let trace = trace_for(2, LoadClass::High, 20);
    let report = run_policy_on(&spec, &trace, "FaaSMem");
    assert_eq!(
        report.local_mem.last_value(),
        Some(0.0),
        "all local memory released"
    );
    assert_eq!(
        report.remote_mem.last_value(),
        Some(0.0),
        "all remote memory released"
    );
    assert_eq!(report.live_containers.last_value(), Some(0.0));
    // The pool's lifetime traffic must cover what was ever held remotely.
    assert!(report.pool_stats.bytes_out >= report.pool_stats.bytes_in);
}

#[test]
fn deterministic_end_to_end() {
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = trace_for(3, LoadClass::High, 15);
    let a = run_policy_on(&spec, &trace, "FaaSMem");
    let b = run_policy_on(&spec, &trace, "FaaSMem");
    assert_eq!(a.requests_completed, b.requests_completed);
    assert_eq!(a.pool_stats, b.pool_stats);
    assert_eq!(a.cold_starts, b.cold_starts);
    let lat_a: Vec<_> = a.requests.iter().map(|r| r.latency).collect();
    let lat_b: Vec<_> = b.requests.iter().map(|r| r.latency).collect();
    assert_eq!(
        lat_a, lat_b,
        "identical seeds must give identical latencies"
    );
}

#[test]
fn reuse_intervals_feed_semiwarm() {
    let spec = BenchmarkSpec::by_name("json").unwrap();
    let trace = trace_for(4, LoadClass::High, 30);
    let report = run_policy_on(&spec, &trace, "FaaSMem");
    let gaps = report
        .reuse_intervals
        .get(&FunctionId(0))
        .expect("warm reuses happened");
    assert!(!gaps.is_empty());
    // Every recorded interval is below the keep-alive timeout, otherwise
    // the container would have been recycled instead of reused.
    for &gap in gaps {
        assert!(
            gap <= SimDuration::from_mins(10),
            "gap {gap} exceeds keep-alive"
        );
    }
}

#[test]
fn per_request_records_are_complete_and_ordered() {
    let spec = BenchmarkSpec::by_name("graph").unwrap();
    let trace = trace_for(5, LoadClass::High, 10);
    let report = run_policy_on(&spec, &trace, "FaaSMem");
    assert_eq!(report.requests.len(), report.requests_completed);
    let arrivals: Vec<_> = trace.iter().map(|i| i.at).collect();
    let mut recorded: Vec<_> = report.requests.iter().map(|r| r.arrived).collect();
    recorded.sort();
    assert_eq!(
        arrivals, recorded,
        "every arrival accounted for exactly once"
    );
    // Cold-start count consistent with the flags.
    assert_eq!(
        report.requests.iter().filter(|r| r.cold).count(),
        report.cold_starts
    );
}

#[test]
fn container_records_cover_all_containers() {
    let spec = BenchmarkSpec::by_name("float").unwrap();
    let trace = trace_for(6, LoadClass::Middle, 60);
    let report = run_policy_on(&spec, &trace, "Baseline");
    let served: u64 = report.containers.iter().map(|c| c.requests_served).sum();
    assert_eq!(served as usize, report.requests_completed);
    for c in &report.containers {
        assert!(c.retired_at > c.created_at);
        assert!(c.busy_time <= c.lifetime());
        // With a 10-minute keep-alive every container lives at least
        // that long after its last request.
        assert!(c.lifetime() >= SimDuration::from_mins(10));
    }
}

#[test]
fn multi_function_node_isolates_state() {
    let specs: Vec<BenchmarkSpec> = BenchmarkSpec::catalog().into_iter().take(4).collect();
    let horizon = SimTime::from_mins(20);
    let mut merged = InvocationTrace::empty(horizon);
    for (i, _) in specs.iter().enumerate() {
        let t = TraceSynthesizer::new(40 + i as u64)
            .load_class(LoadClass::High)
            .duration(horizon)
            .synthesize_for(FunctionId(i as u32));
        merged = merged.merge(&t);
    }
    let mut sim = PlatformSim::builder()
        .register_functions(specs)
        .policy(FaasMemPolicy::builder().build())
        .seed(8)
        .build();
    let report = sim.run(&merged);
    assert_eq!(report.requests_completed, merged.len());
    // Each function's containers only ever served that function.
    let mut by_function: HashMap<FunctionId, u64> = HashMap::new();
    for c in &report.containers {
        *by_function.entry(c.function).or_default() += c.requests_served;
    }
    for f in merged.functions() {
        assert_eq!(
            by_function.get(&f).copied().unwrap_or(0) as usize,
            merged.for_function(f).len(),
            "{f}: requests served by its own containers"
        );
    }
}

#[test]
fn damon_offloads_but_hurts_warm_latency_on_sparse_traffic() {
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    // Sparse: requests a minute apart, well past DAMON's idle threshold.
    let invs: Vec<Invocation> = (0..30)
        .map(|i| Invocation {
            at: SimTime::from_secs(10 + i * 60),
            function: FunctionId(0),
        })
        .collect();
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_mins(60));
    let damon = run_policy_on(&spec, &trace, "DAMON");
    let base = run_policy_on(&spec, &trace, "Baseline");
    let damon_warm_faults: u32 = damon
        .requests
        .iter()
        .filter(|r| !r.cold)
        .map(|r| r.faults)
        .sum();
    assert!(damon_warm_faults > 100, "DAMON must thrash the hot set");
    let base_warm_faults: u32 = base
        .requests
        .iter()
        .filter(|r| !r.cold)
        .map(|r| r.faults)
        .sum();
    assert_eq!(base_warm_faults, 0);
}

use faasmem::workload::Invocation;

// ---------------------------------------------------------------------
// Differential oracle: the shard-parallel driver vs the serial driver
// ---------------------------------------------------------------------

use faasmem::faas::FaultConfig;
use faasmem::sim::FaultSpec;
use faasmem_bench::harness::{
    self, BenchCase, ConfigCase, ExperimentGrid, HarnessOptions, TraceSpec,
};
use faasmem_bench::PolicyKind;

/// Harness options for a differential run: quick traces, tracing and
/// series sampling switched on so the comparison covers every exported
/// artifact. The paths are never written — `run_grid` only collects.
fn oracle_options(shards: Option<u32>) -> HarnessOptions {
    HarnessOptions {
        quick: true,
        trace: Some(std::path::PathBuf::from("unused.jsonl")),
        series: Some(std::path::PathBuf::from("unused.json")),
        shards,
        ..HarnessOptions::default()
    }
}

/// Every deterministic artifact a grid run exports, rendered to the
/// exact bytes the driver binaries would write to disk.
struct GridArtifacts {
    main: String,
    series: String,
    trace: String,
}

fn artifacts(grid: &ExperimentGrid, shards: Option<u32>) -> GridArtifacts {
    let opts = oracle_options(shards);
    let run = harness::run_grid(grid, &opts);
    assert_eq!(run.failures(), 0, "no cell may panic");
    GridArtifacts {
        main: run.to_json().to_pretty(),
        series: run.series_json(opts.series_interval).to_compact(),
        trace: run.trace_jsonl(),
    }
}

/// Races the sharded driver against the serial oracle over the whole
/// grid and demands byte-identical main JSON, series JSON and trace
/// JSONL for every shard count.
fn assert_shard_invariant(grid: &ExperimentGrid) {
    let serial = artifacts(grid, None);
    assert!(!serial.trace.is_empty(), "trace events must be recorded");
    assert!(!serial.series.is_empty(), "series must be sampled");
    for shards in [1u32, 2, 4, 7] {
        let sharded = artifacts(grid, Some(shards));
        assert_eq!(
            serial.main, sharded.main,
            "main JSON diverged at shards={shards}"
        );
        assert_eq!(
            serial.series, sharded.series,
            "series JSON diverged at shards={shards}"
        );
        assert_eq!(
            serial.trace, sharded.trace,
            "trace JSONL diverged at shards={shards}"
        );
    }
}

#[test]
fn sharded_grid_matches_serial_on_the_main_eval_shape() {
    // fig12's shape, miniaturized: two load classes × two benchmarks ×
    // the Baseline/FaaSMem head-to-head, on quick traces.
    let grid = ExperimentGrid::new("oracle_fig12")
        .traces([
            TraceSpec::synth("high", 12_001, LoadClass::High).bursty(true),
            TraceSpec::synth("low", 12_002, LoadClass::Low),
        ])
        .benches([
            BenchCase::single(BenchmarkSpec::by_name("web").unwrap()),
            BenchCase::single(BenchmarkSpec::by_name("bert").unwrap()),
        ])
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    assert_shard_invariant(&grid);
}

#[test]
fn sharded_grid_matches_serial_under_chaos() {
    // disc07's shape, miniaturized: the healthy control plus a seeded
    // outage schedule, Baseline vs FaaSMem on bert.
    let chaos = PlatformConfig {
        faults: Some(FaultConfig {
            spec: FaultSpec::new(0xD15C07)
                .outages(SimDuration::from_mins(5), SimDuration::from_secs(30)),
            slo: Some(SimDuration::from_secs(2)),
            ..FaultConfig::default()
        }),
        ..PlatformConfig::default()
    };
    let grid = ExperimentGrid::new("oracle_disc07")
        .trace(TraceSpec::synth("high-bursty", 907, LoadClass::High).bursty(true))
        .bench(BenchCase::single(BenchmarkSpec::by_name("bert").unwrap()))
        .configs([ConfigCase::default_case(), ConfigCase::new("chaos", chaos)])
        .policy_kinds([PolicyKind::Baseline, PolicyKind::FaasMem]);
    assert_shard_invariant(&grid);
}
