//! Integration tests for the beyond-the-paper features: §9/§10 discussion
//! points and the §8.3.2 future-work extension.

use faasmem::baselines::{DamonConfig, DamonPolicy};
use faasmem::core::FaasMemConfigBuilder;
use faasmem::faas::{AdaptiveKeepAlive, NodeProfile, RackPlan, RackReport};
use faasmem::prelude::*;
use faasmem::workload::{trace_io, Invocation};

fn steady_trace(n: u64, gap_secs: u64) -> InvocationTrace {
    let invs: Vec<Invocation> = (0..n)
        .map(|i| Invocation {
            at: SimTime::from_secs(10 + i * gap_secs),
            function: FunctionId(0),
        })
        .collect();
    InvocationTrace::from_invocations(invs, SimTime::from_secs(10 + n * gap_secs + 1_000))
}

#[test]
fn adaptive_keepalive_recycles_fast_reuse_functions_early() {
    let spec = BenchmarkSpec::by_name("json").unwrap();
    // Requests 15 s apart: the histogram learns a tight reuse bound.
    let trace = steady_trace(60, 15);
    let run = |adaptive: bool| {
        let mut builder = PlatformSim::builder()
            .register_function(spec.clone())
            .seed(9);
        if adaptive {
            builder = builder.adaptive_keep_alive(AdaptiveKeepAlive::default());
        }
        let mut sim = builder.policy(NoOffloadPolicy).build();
        sim.run(&trace)
    };
    let fixed = run(false);
    let adaptive = run(true);
    // Same requests served; the adaptive variant drops the container much
    // sooner after the last request, shrinking total lifetime.
    assert_eq!(fixed.requests_completed, adaptive.requests_completed);
    let lifetime = |r: &RunReport| -> f64 {
        r.containers
            .iter()
            .map(|c| c.lifetime().as_secs_f64())
            .sum()
    };
    assert!(
        lifetime(&adaptive) < lifetime(&fixed) * 0.7,
        "adaptive {:.0}s vs fixed {:.0}s",
        lifetime(&adaptive),
        lifetime(&fixed)
    );
    // And no extra cold starts for this perfectly regular workload.
    assert_eq!(adaptive.cold_starts, fixed.cold_starts);
}

#[test]
fn runtime_sharing_composes_with_faasmem() {
    let spec = BenchmarkSpec::by_name("pyaes").unwrap();
    // Concurrent arrivals force multiple containers.
    let invs: Vec<Invocation> = (0..6)
        .map(|i| Invocation {
            at: SimTime::from_secs(10 + i / 3),
            function: FunctionId(0),
        })
        .collect();
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_mins(15));
    let run = |share: bool| {
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .share_runtime(share)
            .policy(FaasMemPolicy::new())
            .seed(3)
            .build();
        sim.run(&trace)
    };
    let unshared = run(false);
    let shared = run(true);
    assert!(shared.avg_local_mib() < unshared.avg_local_mib());
    assert_eq!(shared.requests_completed, unshared.requests_completed);
}

#[test]
fn ssd_pool_throttles_offloading_but_stays_correct() {
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = steady_trace(10, 30);
    let run = |pool: PoolConfig| {
        let config = faasmem::faas::PlatformConfig {
            pool,
            ..Default::default()
        };
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .config(config)
            .policy(FaasMemPolicy::new())
            .seed(4)
            .build();
        sim.run(&trace)
    };
    let rdma = run(PoolConfig::infiniband_56g());
    let ssd = run(PoolConfig::ssd());
    assert_eq!(rdma.requests_completed, ssd.requests_completed);
    // The SSD's 1 MB/s write cap cannot absorb the same offload stream.
    assert!(
        ssd.pool_stats.bytes_out <= rdma.pool_stats.bytes_out,
        "ssd {} vs rdma {}",
        ssd.pool_stats.bytes_out,
        rdma.pool_stats.bytes_out
    );
    // Accounting stays conserved either way.
    assert_eq!(ssd.local_mem.last_value(), Some(0.0));
    assert_eq!(ssd.remote_mem.last_value(), Some(0.0));
}

#[test]
fn region_damon_runs_end_to_end() {
    let spec = BenchmarkSpec::by_name("web").unwrap();
    let trace = steady_trace(20, 45);
    let mut sim = PlatformSim::builder()
        .register_function(spec)
        .policy(DamonPolicy::new(DamonConfig::with_regions()))
        .seed(5)
        .build();
    let report = sim.run(&trace);
    assert_eq!(report.requests_completed, 20);
    assert!(
        report.pool_stats.bytes_out > 0,
        "regions must offload cold tail"
    );
    assert_eq!(report.local_mem.last_value(), Some(0.0));
}

#[test]
fn cold_start_aware_semiwarm_reduces_drain_on_cluster_patterns() {
    let spec = BenchmarkSpec::by_name("json").unwrap();
    let mut invs = Vec::new();
    for cluster in 0..4u64 {
        for i in 0..6u64 {
            invs.push(Invocation {
                at: SimTime::from_secs(10 + cluster * 700 + i * 5),
                function: FunctionId(0),
            });
        }
    }
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_secs(4_000));
    let run = |aware: bool| {
        let policy = FaasMemPolicy::builder()
            .config(FaasMemConfigBuilder::new().cold_start_aware(aware).build())
            .build();
        let stats = policy.stats();
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .policy(policy)
            .seed(6)
            .build();
        let _ = sim.run(&trace);
        let bytes = stats.borrow().semi_warm_bytes;
        bytes
    };
    assert!(run(true) < run(false));
}

#[test]
fn rack_analysis_from_a_real_report() {
    let spec = BenchmarkSpec::by_name("graph").unwrap();
    let trace = TraceSynthesizer::new(8)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(30))
        .synthesize_for(FunctionId(0));
    let mut sim = PlatformSim::builder()
        .register_function(spec)
        .policy(FaasMemPolicy::new())
        .seed(7)
        .build();
    let report = sim.run(&trace);
    let node = NodeProfile::from_report(&report, 384.0, 2_500.0);
    assert!(node.bandwidth_per_container_mbps > 0.0);
    assert!(node.remote_to_local_ratio > 0.0);
    let rack = RackReport::analyze(node, RackPlan::default());
    assert!(rack.demand_gbps > 0.0);
    assert!(rack.pool_gib > 0.0);
    assert!(rack.relative_dram_cost < 1.0, "pooling must be cheaper");
}

#[test]
fn traces_roundtrip_through_files_and_replay_identically() {
    let trace = TraceSynthesizer::new(21)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(10))
        .synthesize_for(FunctionId(0));
    let text = trace_io::to_string(&trace);
    let restored = trace_io::from_str(&text).expect("well-formed");
    assert_eq!(trace, restored);
    let run = |t: &InvocationTrace| {
        let mut sim = PlatformSim::builder()
            .register_function(BenchmarkSpec::by_name("float").unwrap())
            .policy(FaasMemPolicy::new())
            .seed(11)
            .build();
        let mut report = sim.run(t);
        (
            report.requests_completed,
            report.p95_latency(),
            report.pool_stats,
        )
    };
    assert_eq!(run(&trace), run(&restored));
}
