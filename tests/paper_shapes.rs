//! The paper's headline claims, enforced as integration tests.
//!
//! These tests don't chase the paper's absolute numbers (our substrate is
//! a simulator, not a CloudLab testbed) — they enforce the *shape* of
//! every major result: who wins, in which direction, and the orderings
//! the paper's analysis rests on.

use faasmem::prelude::*;

fn run<P: MemoryPolicy + 'static>(
    spec: &BenchmarkSpec,
    trace: &InvocationTrace,
    policy: P,
) -> RunReport {
    let mut sim = PlatformSim::builder()
        .register_function(spec.clone())
        .policy(policy)
        .seed(23)
        .build();
    sim.run(trace)
}

fn high_load_trace(seed: u64) -> InvocationTrace {
    TraceSynthesizer::new(seed)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(60))
        .synthesize_for(FunctionId(0))
}

/// Fig 12: FaaSMem saves far more memory than TMO at the same latency.
#[test]
fn faasmem_beats_tmo_on_memory_at_equal_latency() {
    let trace = high_load_trace(1);
    for name in ["json", "bert", "web"] {
        let spec = BenchmarkSpec::by_name(name).unwrap();
        let mut base = run(&spec, &trace, NoOffloadPolicy);
        let mut tmo = run(&spec, &trace, TmoPolicy::default());
        let mut fm = run(&spec, &trace, FaasMemPolicy::new());
        let base_mem = base.avg_local_mib();
        let tmo_saved = base_mem - tmo.avg_local_mib();
        let fm_saved = base_mem - fm.avg_local_mib();
        assert!(
            fm_saved > tmo_saved * 4.0,
            "{name}: FaaSMem saved {fm_saved:.1} MiB vs TMO {tmo_saved:.1} MiB"
        );
        let p95_base = base.p95_latency().as_secs_f64();
        let p95_fm = fm.p95_latency().as_secs_f64();
        assert!(
            p95_fm <= p95_base * 1.15,
            "{name}: FaaSMem P95 {p95_fm:.3} vs baseline {p95_base:.3}"
        );
        let p95_tmo = tmo.p95_latency().as_secs_f64();
        assert!(p95_tmo <= p95_base * 1.1, "{name}: TMO stays near baseline");
    }
}

/// §8.2.1: micro-benchmarks offload at least half their memory (the cold
/// runtime segment dominates their footprint).
#[test]
fn micro_benchmarks_save_at_least_half() {
    let trace = high_load_trace(2);
    for spec in BenchmarkSpec::micro_benchmarks() {
        let base = run(&spec, &trace, NoOffloadPolicy);
        let fm = run(&spec, &trace, FaasMemPolicy::new());
        let ratio = fm.avg_local_mib() / base.avg_local_mib();
        assert!(
            ratio < 0.5,
            "{}: kept {:.0}% of baseline memory",
            spec.name,
            ratio * 100.0
        );
    }
}

/// §8.2.1: among the applications, Web offloads the most (Pareto-cold
/// HTML cache) and Graph the least (full traversal each request).
#[test]
fn web_saves_most_graph_saves_least_among_apps() {
    let trace = high_load_trace(3);
    let mut savings = Vec::new();
    for spec in BenchmarkSpec::applications() {
        let base = run(&spec, &trace, NoOffloadPolicy);
        let fm = run(&spec, &trace, FaasMemPolicy::new());
        let saved_frac = 1.0 - fm.avg_local_mib() / base.avg_local_mib();
        savings.push((spec.name, saved_frac));
    }
    let get = |n: &str| savings.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(
        get("web") > get("bert"),
        "web {:?} > bert {:?}",
        get("web"),
        get("bert")
    );
    assert!(get("web") > get("graph"));
    assert!(get("graph") < get("bert"), "graph is the worst offloader");
}

/// Fig 13: both components matter — removing either costs memory.
#[test]
fn ablation_components_both_contribute() {
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = high_load_trace(4);
    let full = run(&spec, &trace, FaasMemPolicy::new());
    let no_pucket = run(
        &spec,
        &trace,
        FaasMemPolicy::builder().without_pucket().build(),
    );
    let no_semiwarm = run(
        &spec,
        &trace,
        FaasMemPolicy::builder().without_semiwarm().build(),
    );
    let base = run(&spec, &trace, NoOffloadPolicy);
    assert!(full.avg_local_mib() < no_pucket.avg_local_mib());
    assert!(full.avg_local_mib() < no_semiwarm.avg_local_mib());
    assert!(
        no_semiwarm.avg_local_mib() < base.avg_local_mib(),
        "pucket alone still helps"
    );
    assert!(
        no_pucket.avg_local_mib() < base.avg_local_mib(),
        "semi-warm alone still helps"
    );
}

/// Fig 2 + Fig 12: a stage-agnostic sampler (DAMON) pays a much larger
/// warm-latency tax than FaaSMem for comparable offloading.
#[test]
fn faasmem_warm_latency_tax_is_far_below_damons() {
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    // One-minute gaps: long enough for DAMON to evict the hot set, short
    // enough that the container survives keep-alive.
    let invs: Vec<faasmem::workload::Invocation> = (0..40)
        .map(|i| faasmem::workload::Invocation {
            at: SimTime::from_secs(10 + i * 60),
            function: FunctionId(0),
        })
        .collect();
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_mins(60));
    // Finer pages, as in the Fig 2 experiment: fault counts (and the
    // per-fault CPU cost) then track the kernel's 4 KiB granularity.
    let run_fine = |policy_is_damon: bool| {
        let builder = PlatformSim::builder()
            .register_function(spec.clone())
            .page_size(16 * 1024)
            .seed(23);
        let mut sim = if policy_is_damon {
            builder.policy(DamonPolicy::default()).build()
        } else {
            builder.policy(FaasMemPolicy::new()).build()
        };
        sim.run(&trace)
    };
    let mut damon = run_fine(true);
    let mut fm = run_fine(false);
    let p95_damon = damon.p95_latency().as_secs_f64();
    let p95_fm = fm.p95_latency().as_secs_f64();
    assert!(
        p95_damon > p95_fm * 2.0,
        "DAMON P95 {p95_damon:.3}s must far exceed FaaSMem {p95_fm:.3}s"
    );
}

/// §6.1: the semi-warm start timing honours the per-function reuse CDF —
/// a container idle less than the observed 99th-percentile reuse interval
/// keeps its hot pages local.
#[test]
fn semiwarm_respects_reuse_percentile() {
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    // Steady 100 s gaps: the p99 reuse interval is ~100 s, so semi-warm
    // waits at least that long; every warm request finds hot pages local.
    let invs: Vec<faasmem::workload::Invocation> = (0..20)
        .map(|i| faasmem::workload::Invocation {
            at: SimTime::from_secs(10 + i * 100),
            function: FunctionId(0),
        })
        .collect();
    let trace = InvocationTrace::from_invocations(invs, SimTime::from_mins(60));
    let report = run(&spec, &trace, FaasMemPolicy::new());
    // After the reuse history builds up (first few use the 240 s default,
    // which is also > 100 s), warm requests should take almost no faults
    // from semi-warm evictions; allow the init-tail randomness.
    let late_warm_faults: Vec<u32> = report
        .requests
        .iter()
        .skip(8)
        .filter(|r| !r.cold)
        .map(|r| r.faults)
        .collect();
    let heavy = late_warm_faults.iter().filter(|&&f| f > 2_000).count();
    assert_eq!(
        heavy, 0,
        "no warm request recalls the whole hot set: {late_warm_faults:?}"
    );
}

/// Fig 16: deployment density improves, and Web improves most.
#[test]
fn density_improvement_ordering() {
    use faasmem::faas::estimate_density;
    let trace = high_load_trace(5);
    let mut density = Vec::new();
    for spec in BenchmarkSpec::applications() {
        let report = run(&spec, &trace, FaasMemPolicy::new());
        let d = estimate_density(&report, &spec);
        assert!(d.improvement > 1.05, "{}: density must improve", spec.name);
        density.push((spec.name, d.improvement));
    }
    let get = |n: &str| density.iter().find(|(name, _)| *name == n).unwrap().1;
    assert!(
        get("web") > get("graph"),
        "web {:.2} > graph {:.2}",
        get("web"),
        get("graph")
    );
}

/// Fig 1: longer keep-alive means fewer cold starts but more inactive
/// memory time.
#[test]
fn keepalive_tradeoff_is_monotone() {
    let spec = BenchmarkSpec::by_name("json").unwrap();
    let trace = TraceSynthesizer::new(6)
        .load_class(LoadClass::Middle)
        .duration(SimTime::from_mins(120))
        .synthesize_for(FunctionId(0));
    let mut cold_ratios = Vec::new();
    let mut inactive = Vec::new();
    for timeout in [30u64, 120, 600] {
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .policy(NoOffloadPolicy)
            .keep_alive(SimDuration::from_secs(timeout))
            .seed(23)
            .build();
        let report = sim.run(&trace);
        cold_ratios.push(report.cold_start_ratio());
        inactive.push(report.memory_inactive_fraction());
    }
    assert!(
        cold_ratios[0] > cold_ratios[1] && cold_ratios[1] > cold_ratios[2],
        "{cold_ratios:?}"
    );
    assert!(inactive[0] < inactive[2], "{inactive:?}");
}
