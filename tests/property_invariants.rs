//! Property-based integration tests: platform invariants must hold for
//! arbitrary traces, benchmark choices and policies.

use faasmem::prelude::*;
use proptest::prelude::*;

fn arbitrary_trace() -> impl Strategy<Value = InvocationTrace> {
    (
        proptest::collection::vec(0u64..1_800, 1..40),
        Just(SimTime::from_mins(60)),
    )
        .prop_map(|(secs, horizon)| {
            let invs = secs
                .into_iter()
                .map(|s| faasmem::workload::Invocation {
                    at: SimTime::from_secs(s),
                    function: FunctionId(0),
                })
                .collect();
            InvocationTrace::from_invocations(invs, horizon)
        })
}

fn policy_for(idx: u8) -> Box<dyn MemoryPolicy> {
    match idx % 4 {
        0 => Box::new(NoOffloadPolicy),
        1 => Box::new(TmoPolicy::default()),
        2 => Box::new(DamonPolicy::default()),
        _ => Box::new(FaasMemPolicy::new()),
    }
}

fn run_boxed(
    spec: BenchmarkSpec,
    policy: Box<dyn MemoryPolicy>,
    trace: &InvocationTrace,
    seed: u64,
) -> RunReport {
    // PlatformBuilder::policy takes a concrete type; route through a
    // forwarding adapter so the property can sample policies dynamically.
    struct Forward(Box<dyn MemoryPolicy>);
    impl MemoryPolicy for Forward {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn tick_interval(&self) -> Option<SimDuration> {
            self.0.tick_interval()
        }
        fn on_runtime_loaded(&mut self, ctx: &mut faasmem::faas::PolicyCtx<'_>) {
            self.0.on_runtime_loaded(ctx)
        }
        fn on_init_done(&mut self, ctx: &mut faasmem::faas::PolicyCtx<'_>) {
            self.0.on_init_done(ctx)
        }
        fn on_request_start(
            &mut self,
            ctx: &mut faasmem::faas::PolicyCtx<'_>,
            idle: Option<SimDuration>,
        ) {
            self.0.on_request_start(ctx, idle)
        }
        fn on_request_end(&mut self, ctx: &mut faasmem::faas::PolicyCtx<'_>) {
            self.0.on_request_end(ctx)
        }
        fn on_tick(&mut self, ctx: &mut faasmem::faas::PolicyCtx<'_>) {
            self.0.on_tick(ctx)
        }
        fn on_container_recycled(&mut self, ctx: &mut faasmem::faas::PolicyCtx<'_>) {
            self.0.on_container_recycled(ctx)
        }
    }
    let mut sim = PlatformSim::builder()
        .register_function(spec)
        .policy(Forward(policy))
        .seed(seed)
        .build();
    sim.run(trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_all_requests_complete_and_memory_drains(
        trace in arbitrary_trace(),
        policy_idx in 0u8..4,
        spec_idx in 0usize..11,
        seed in 0u64..100,
    ) {
        let spec = BenchmarkSpec::catalog()[spec_idx].clone();
        let report = run_boxed(spec, policy_for(policy_idx), &trace, seed);
        prop_assert_eq!(report.requests_completed, trace.len());
        prop_assert_eq!(report.local_mem.last_value(), Some(0.0));
        prop_assert_eq!(report.remote_mem.last_value(), Some(0.0));
        prop_assert_eq!(report.live_containers.last_value(), Some(0.0));
        // Pool conservation: what went out either came back or was
        // discarded at recycle; never negative.
        prop_assert!(report.pool_stats.bytes_out >= report.pool_stats.bytes_in);
        // Container accounting.
        let served: u64 = report.containers.iter().map(|c| c.requests_served).sum();
        prop_assert_eq!(served as usize, report.requests_completed);
    }

    #[test]
    fn prop_latency_never_below_pure_exec(
        trace in arbitrary_trace(),
        policy_idx in 0u8..4,
        seed in 0u64..100,
    ) {
        let spec = BenchmarkSpec::by_name("json").unwrap();
        let exec = spec.exec_time;
        let report = run_boxed(spec, policy_for(policy_idx), &trace, seed);
        for r in &report.requests {
            // Latency at least ~the jittered compute time (jitter sigma
            // 0.05 means > 0.7x is astronomically safe).
            prop_assert!(r.latency >= exec.mul_f64(0.7), "latency {} < exec", r.latency);
            if r.cold {
                prop_assert!(r.latency >= exec.mul_f64(0.7) + SimDuration::from_millis(400));
            }
        }
    }

    #[test]
    fn prop_cold_policies_never_evict_the_hot_set(
        gaps in proptest::collection::vec(5u64..400, 2..25),
        seed in 0u64..50,
    ) {
        // §5's guarantee: the Pucket policies (reactive + window +
        // rollback) only offload *inactive* pages. A fully-hot workload
        // (json touches its whole init segment and a fixed runtime set
        // every request) must therefore run essentially fault-free when
        // semi-warm is disabled — recalls can only come from the rare
        // cold-runtime touch (~0.4% per request).
        let spec = BenchmarkSpec::by_name("json").unwrap();
        let mut t = 10u64;
        let mut invs = Vec::new();
        for g in gaps {
            invs.push(faasmem::workload::Invocation {
                at: SimTime::from_secs(t),
                function: FunctionId(0),
            });
            t += g;
        }
        let trace = InvocationTrace::from_invocations(invs, SimTime::from_secs(t + 1_000));
        let policy = FaasMemPolicy::builder().without_semiwarm().build();
        let report = run_boxed(spec, Box::new(policy), &trace, seed);
        for r in report.requests.iter().filter(|r| !r.cold) {
            prop_assert!(
                r.faults <= 3,
                "warm request took {} faults — hot set was evicted",
                r.faults
            );
        }
    }

    #[test]
    fn prop_push_at_many_groups_straddling_a_drain_stay_fifo(
        first in proptest::collection::vec(0u32..100, 1..12),
        second in proptest::collection::vec(100u32..200, 1..12),
        drained in 0usize..12,
        at_us in 1u64..1_000,
    ) {
        // Regression: two same-instant groups pushed around a partial
        // drain must interleave exactly like individual pushes — the
        // batch path shares the queue's seq counter, so later batches
        // sort after survivors of earlier ones at the same instant.
        use faasmem::sim::EventQueue;
        let at = SimTime::from_micros(at_us);
        let mut batched: EventQueue<u32> = EventQueue::new();
        let mut individual: EventQueue<u32> = EventQueue::new();
        batched.push_at_many(at, first.iter().copied());
        for &e in &first {
            individual.push(at, e);
        }
        // Drain part of the first group, leaving survivors in the heap.
        let drained = drained.min(first.len());
        for _ in 0..drained {
            prop_assert_eq!(batched.pop(), individual.pop());
        }
        // The second same-instant group straddles that drain.
        batched.push_at_many(at, second.iter().copied());
        for &e in &second {
            individual.push(at, e);
        }
        let mut batched_order = Vec::new();
        while let Some(popped) = batched.pop() {
            prop_assert_eq!(Some(popped), individual.pop());
            batched_order.push(popped.1);
        }
        prop_assert!(individual.is_empty());
        // FIFO across the straddle: first-group survivors, then the
        // whole second group, each in push order.
        let expected: Vec<u32> = first[drained..]
            .iter()
            .chain(second.iter())
            .copied()
            .collect();
        prop_assert_eq!(batched_order, expected);
    }

    #[test]
    fn prop_groups_wrapping_the_bucket_ring_stay_fifo(
        first in proptest::collection::vec(0u32..100, 1..12),
        second in proptest::collection::vec(100u32..200, 1..12),
        drained in 0usize..12,
        advance in 2u64..16,
        wrap_extra in 0u64..16,
        delta in 0u64..1_000,
    ) {
        // Regression: same-instant groups whose bucket lands *below*
        // the ring cursor (the index computation wraps modulo the
        // bucket count) must still interleave across a partial drain
        // exactly like individual pushes. Exercises the modular index
        // path the plain straddle test above never reaches.
        use faasmem::sim::EventQueue;
        let mut batched: EventQueue<u32> = EventQueue::new();
        let mut individual: EventQueue<u32> = EventQueue::new();
        let n = batched.bucket_count() as u64;
        let w = batched.bucket_width_micros();
        // March the cursor `c` buckets into the ring with pacer events
        // so later indexes have somewhere to wrap to.
        let c = (advance - 1).min(n - 2).max(1);
        for i in 0..=c {
            let at = SimTime::from_micros(i * w + w / 2);
            batched.push(at, u32::MAX);
            individual.push(at, u32::MAX);
        }
        for _ in 0..=c {
            prop_assert_eq!(batched.pop(), individual.pop());
        }
        // The cursor now sits on bucket `c` with ring_start = c·w. An
        // offset in [n - c, n) stays inside the horizon but maps to a
        // physical bucket below the cursor — the wraparound.
        let offset = n - c + (wrap_extra % c);
        let at = SimTime::from_micros(c * w + offset * w + delta % w.max(1));
        batched.push_at_many(at, first.iter().copied());
        for &e in &first {
            individual.push(at, e);
        }
        // Wrapped, not parked: the instant is below the horizon.
        prop_assert_eq!(batched.overflow_len(), 0);
        let drained = drained.min(first.len());
        for _ in 0..drained {
            prop_assert_eq!(batched.pop(), individual.pop());
        }
        // The second same-instant group straddles that partial drain
        // and lands on the same wrapped bucket.
        batched.push_at_many(at, second.iter().copied());
        for &e in &second {
            individual.push(at, e);
        }
        let mut batched_order = Vec::new();
        while let Some(popped) = batched.pop() {
            prop_assert_eq!(Some(popped), individual.pop());
            batched_order.push(popped.1);
        }
        prop_assert!(individual.is_empty());
        let expected: Vec<u32> = first[drained..]
            .iter()
            .chain(second.iter())
            .copied()
            .collect();
        prop_assert_eq!(batched_order, expected);
    }

    #[test]
    fn prop_offload_never_exceeds_allocated(
        trace in arbitrary_trace(),
        seed in 0u64..100,
    ) {
        let spec = BenchmarkSpec::by_name("web").unwrap();
        let report = run_boxed(spec.clone(), Box::new(FaasMemPolicy::new()), &trace, seed);
        // Remote footprint can never exceed what the containers hold:
        // base footprint per container times the container peak.
        let peak_remote = report.remote_mem.max_value().unwrap_or(0.0);
        let peak_containers = report.live_containers.max_value().unwrap_or(0.0);
        let bound =
            (spec.base_mib() + spec.exec_mib) as f64 * 1024.0 * 1024.0 * peak_containers.max(1.0);
        prop_assert!(peak_remote <= bound, "remote {peak_remote} > bound {bound}");
    }
}
