//! Robustness: the headline claims must hold across seeds, loads and
//! platform configurations — not just at the defaults the figures use.

use faasmem::faas::AdaptiveKeepAlive;
use faasmem::prelude::*;

fn run<P: MemoryPolicy + 'static>(
    spec: &BenchmarkSpec,
    trace: &InvocationTrace,
    policy: P,
    seed: u64,
) -> RunReport {
    let mut sim = PlatformSim::builder()
        .register_function(spec.clone())
        .policy(policy)
        .seed(seed)
        .build();
    sim.run(trace)
}

#[test]
fn memory_savings_hold_across_seeds_and_loads() {
    for seed in [1u64, 77, 4242] {
        for class in [LoadClass::High, LoadClass::Middle] {
            for name in ["json", "web"] {
                let spec = BenchmarkSpec::by_name(name).unwrap();
                let trace = TraceSynthesizer::new(seed)
                    .load_class(class)
                    .duration(SimTime::from_mins(45))
                    .synthesize_for(FunctionId(0));
                if trace.len() < 3 {
                    continue;
                }
                let mut base = run(&spec, &trace, NoOffloadPolicy, seed);
                let mut fm = run(&spec, &trace, FaasMemPolicy::new(), seed);
                let saved = 1.0 - fm.avg_local_mib() / base.avg_local_mib();
                assert!(
                    saved > 0.3,
                    "{name} seed {seed} {class:?}: saved only {:.0}%",
                    saved * 100.0
                );
                // The paper's P95 guard is statistical: with sparse
                // traces the 95th percentile can land on the one
                // semi-warm recall, so accept either a small relative
                // increase or a small absolute one.
                let p95_base = base.p95_latency().as_secs_f64();
                let p95_fm = fm.p95_latency().as_secs_f64();
                assert!(
                    p95_fm < p95_base * 1.2 || p95_fm - p95_base < 0.1,
                    "{name} seed {seed} {class:?}: P95 {p95_fm:.3}s vs {p95_base:.3}s"
                );
            }
        }
    }
}

#[test]
fn determinism_holds_for_every_policy_under_bursty_load() {
    let trace = TraceSynthesizer::new(5)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(20))
        .synthesize_for(FunctionId(0));
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let fingerprint = |report: RunReport| {
        (
            report.requests_completed,
            report.cold_starts,
            report.pool_stats,
            report.containers.len(),
        )
    };
    let a = fingerprint(run(&spec, &trace, FaasMemPolicy::new(), 9));
    let b = fingerprint(run(&spec, &trace, FaasMemPolicy::new(), 9));
    assert_eq!(a, b);
    let a = fingerprint(run(&spec, &trace, TmoPolicy::default(), 9));
    let b = fingerprint(run(&spec, &trace, TmoPolicy::default(), 9));
    assert_eq!(a, b);
    let a = fingerprint(run(&spec, &trace, DamonPolicy::default(), 9));
    let b = fingerprint(run(&spec, &trace, DamonPolicy::default(), 9));
    assert_eq!(a, b);
}

#[test]
fn adaptive_keepalive_never_leaks_containers() {
    // Irregular gaps exercise the re-arm path where the learned timeout
    // changes between a recycle check being scheduled and firing.
    let spec = BenchmarkSpec::by_name("float").unwrap();
    for seed in [3u64, 13] {
        let trace = TraceSynthesizer::new(seed)
            .load_class(LoadClass::Middle)
            .bursty(true)
            .duration(SimTime::from_mins(90))
            .synthesize_for(FunctionId(0));
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .adaptive_keep_alive(AdaptiveKeepAlive::default())
            .policy(FaasMemPolicy::new())
            .seed(seed)
            .build();
        let report = sim.run(&trace);
        assert_eq!(report.requests_completed, trace.len());
        assert_eq!(
            report.live_containers.last_value(),
            Some(0.0),
            "container leak"
        );
        assert_eq!(report.local_mem.last_value(), Some(0.0));
    }
}

#[test]
fn page_size_does_not_change_the_winner() {
    let spec = BenchmarkSpec::by_name("web").unwrap();
    let trace = TraceSynthesizer::new(31)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(20))
        .synthesize_for(FunctionId(0));
    for page_size in [16 * 1024u64, 64 * 1024, 256 * 1024] {
        let run_at = |faasmem: bool| {
            let builder = PlatformSim::builder()
                .register_function(spec.clone())
                .page_size(page_size)
                .seed(1);
            let mut sim = if faasmem {
                builder.policy(FaasMemPolicy::new()).build()
            } else {
                builder.policy(NoOffloadPolicy).build()
            };
            sim.run(&trace).avg_local_mib()
        };
        let base = run_at(false);
        let fm = run_at(true);
        assert!(
            fm < base * 0.5,
            "page size {page_size}: FaaSMem {fm:.0} MiB vs base {base:.0} MiB"
        );
    }
}

#[test]
fn empty_fault_plan_is_a_noop_for_the_real_policy() {
    use faasmem::faas::{FaultConfig, PlatformConfig};

    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = TraceSynthesizer::new(23)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(30))
        .synthesize_for(FunctionId(0));
    let run_with = |faults: Option<FaultConfig>| {
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .config(PlatformConfig {
                faults,
                ..Default::default()
            })
            .policy(FaasMemPolicy::new())
            .seed(4)
            .build();
        let mut report = sim.run(&trace);
        (
            report.requests_completed,
            report.cold_starts,
            report.p95_latency(),
            report.avg_local_mib(),
            report.pool_stats,
        )
    };
    // FaultConfig::default() has every fault category disabled, so its
    // plan is empty — the chaos machinery must then be invisible.
    assert_eq!(run_with(None), run_with(Some(FaultConfig::default())));
}

#[test]
fn chaos_run_completes_every_request() {
    use faasmem::faas::{FaultConfig, PlatformConfig};
    use faasmem::sim::FaultSpec;

    let spec = BenchmarkSpec::by_name("web").unwrap();
    let trace = TraceSynthesizer::new(29)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(45))
        .synthesize_for(FunctionId(0));
    let mut sim = PlatformSim::builder()
        .register_function(spec)
        .config(PlatformConfig {
            faults: Some(FaultConfig {
                spec: FaultSpec::new(0xC0FFEE)
                    .outages(SimDuration::from_mins(4), SimDuration::from_secs(25))
                    .brownouts(SimDuration::from_mins(6), SimDuration::from_secs(60), 0.25)
                    .node_losses(SimDuration::from_mins(15), 0.5)
                    .crashes(SimDuration::from_mins(8)),
                slo: Some(SimDuration::from_secs(2)),
                ..FaultConfig::default()
            }),
            ..Default::default()
        })
        .policy(FaasMemPolicy::new())
        .seed(6)
        .build();
    let report = sim.run(&trace);
    // Chaos may slow requests and force rebuilds, but must never lose
    // them or wedge the platform.
    assert_eq!(report.requests_completed, trace.len());
    let faults = report.faults.expect("chaos run reports fault metrics");
    assert!(faults.link_availability < 1.0);
    assert!(faults.link_availability > 0.0);
    assert_eq!(faults.slo_total, trace.len() as u64);
}

#[test]
fn long_outage_suspends_offloading_via_the_breaker() {
    use faasmem::faas::{FaultConfig, PlatformConfig};
    use faasmem::pool::RemoteFaultPolicy;
    use faasmem::sim::{FaultPlan, LinkSchedule, LinkWindow};

    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = TraceSynthesizer::new(41)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(30))
        .synthesize_for(FunctionId(0));
    // The link dies five minutes in — after FaaSMem has offloaded the
    // first containers' cold pages — and never comes back.
    let plan = FaultPlan {
        link: LinkSchedule::from_windows(vec![LinkWindow {
            start: SimTime::from_secs(300),
            end: SimTime::MAX,
            factor: 0.0,
        }]),
        ..FaultPlan::empty()
    };
    let mut sim = PlatformSim::builder()
        .register_function(spec)
        .config(PlatformConfig {
            faults: Some(FaultConfig {
                policy: RemoteFaultPolicy {
                    breaker_threshold: 1,
                    ..RemoteFaultPolicy::hasty()
                },
                plan_override: Some(plan),
                ..FaultConfig::default()
            }),
            ..Default::default()
        })
        .policy(FaasMemPolicy::new())
        .seed(8)
        .build();
    let report = sim.run(&trace);
    assert_eq!(report.requests_completed, trace.len());
    let faults = report.faults.expect("fault metrics");
    // Recalls behind the dead link give up, trip the breaker, and the
    // platform falls back to keeping pages local.
    assert!(faults.page_ins_gave_up > 0, "{faults:?}");
    assert!(faults.breaker_opens > 0, "{faults:?}");
    assert!(faults.offloads_refused > 0, "{faults:?}");
    assert_eq!(faults.forced_cold_restarts, faults.page_ins_gave_up);
}

#[test]
fn fault_injection_is_deterministic_per_seed() {
    use faasmem::faas::{FaultConfig, PlatformConfig};
    use faasmem::sim::FaultSpec;

    let spec = BenchmarkSpec::by_name("json").unwrap();
    let trace = TraceSynthesizer::new(11)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(30))
        .synthesize_for(FunctionId(0));
    let run_chaos = |fault_seed: u64| {
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .config(PlatformConfig {
                faults: Some(FaultConfig {
                    spec: FaultSpec::new(fault_seed)
                        .outages(SimDuration::from_mins(3), SimDuration::from_secs(20))
                        .crashes(SimDuration::from_mins(5)),
                    ..FaultConfig::default()
                }),
                ..Default::default()
            })
            .policy(FaasMemPolicy::new())
            .seed(12)
            .build();
        let report = sim.run(&trace);
        (
            report.requests_completed,
            report.cold_starts,
            report.pool_stats,
            report.faults,
        )
    };
    assert_eq!(run_chaos(0xAB), run_chaos(0xAB));
    // A different fault seed yields a different fault history.
    assert_ne!(run_chaos(0xAB).3, run_chaos(0xCD).3);
}

#[test]
fn chaos_fault_reports_are_shard_count_invariant() {
    use faasmem::faas::{FaultConfig, PlatformConfig, ShardSpec};
    use faasmem::sim::FaultSpec;

    // The full chaos menu — outages, brownouts, node losses, container
    // crashes — must produce the same fault history through the
    // shard-parallel driver at any shard count: the injected timeline is
    // control-plane state shared by every shard.
    let spec = BenchmarkSpec::by_name("web").unwrap();
    let trace = TraceSynthesizer::new(29)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(20))
        .synthesize_for(FunctionId(0));
    let run_chaos = |shards: Option<u32>| {
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .config(PlatformConfig {
                faults: Some(FaultConfig {
                    spec: FaultSpec::new(0xC0FFEE)
                        .outages(SimDuration::from_mins(4), SimDuration::from_secs(25))
                        .brownouts(SimDuration::from_mins(6), SimDuration::from_secs(60), 0.25)
                        .node_losses(SimDuration::from_mins(15), 0.5)
                        .crashes(SimDuration::from_mins(8)),
                    slo: Some(SimDuration::from_secs(2)),
                    ..FaultConfig::default()
                }),
                ..Default::default()
            })
            .policy(FaasMemPolicy::new())
            .seed(6)
            .build();
        let report = match shards {
            None => sim.run(&trace),
            Some(s) => sim.run_sharded(&trace, &ShardSpec::new(s)),
        };
        (
            report.requests_completed,
            report.cold_starts,
            report.pool_stats,
            report.faults,
        )
    };
    let serial = run_chaos(None);
    assert!(
        serial.3.as_ref().is_some_and(|f| f.link_availability < 1.0),
        "chaos must actually bite"
    );
    for shards in [1u32, 2, 4, 7] {
        assert_eq!(
            run_chaos(Some(shards)),
            serial,
            "shards={shards} changed the fault history"
        );
    }
}

#[test]
fn mirrored_fabric_beats_no_redundancy_under_the_same_chaos() {
    use faasmem::faas::{FaultConfig, PlatformConfig};
    use faasmem::pool::{FabricConfig, RedundancyPolicy};
    use faasmem::sim::FaultSpec;

    // Identical trace, platform seed and fault-plan seed: node deaths
    // land on the same nodes at the same instants in both runs, so any
    // difference in outcome is the redundancy dividend itself.
    const NODES: u32 = 4;
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = TraceSynthesizer::new(908)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(45))
        .synthesize_for(FunctionId(0));
    let run_with = |redundancy: RedundancyPolicy| {
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .config(PlatformConfig {
                fabric: FabricConfig {
                    nodes: NODES,
                    redundancy,
                    ..FabricConfig::default()
                },
                faults: Some(FaultConfig {
                    spec: FaultSpec::new(0xD1FF).pool_node_losses(SimDuration::from_mins(8), NODES),
                    ..FaultConfig::default()
                }),
                ..Default::default()
            })
            .policy(FaasMemPolicy::new())
            .seed(6)
            .build();
        let report = sim.run(&trace);
        assert_eq!(report.requests_completed, trace.len());
        report
    };
    let plain = run_with(RedundancyPolicy::None);
    let mirrored = run_with(RedundancyPolicy::Mirror { k: 2 });
    let pf = plain.faults.as_ref().expect("fault metrics");
    let mf = mirrored.faults.as_ref().expect("fault metrics");
    // The fault plan is a pure function of its seed — both runs saw the
    // identical sequence of node deaths.
    assert_eq!(pf.node_loss_events, mf.node_loss_events);
    assert!(pf.node_loss_events > 0, "chaos must actually bite");
    // The dividend: mirroring turns forced cold rebuilds into failover
    // recalls and loses no more remote state than going bare.
    assert!(
        mf.forced_cold_restarts < pf.forced_cold_restarts,
        "mirror {} vs none {} forced rebuilds",
        mf.forced_cold_restarts,
        pf.forced_cold_restarts
    );
    let pd = plain.durability.expect("fabric runs report durability");
    let md = mirrored.durability.expect("fabric runs report durability");
    assert!(
        md.tracker.avoided_cold_rebuilds > 0,
        "some segment must survive a node death via its replica"
    );
    assert!(md.tracker.bytes_lost <= pd.tracker.bytes_lost);
    assert!(
        md.tracker.replica_bytes_out > 0,
        "the dividend is paid for with replica write traffic"
    );
    assert_eq!(pd.tracker.replica_bytes_out, 0);
}

#[test]
fn tiny_pool_degrades_gracefully() {
    // A pool that can hold almost nothing: offloads truncate, but runs
    // stay correct and latency bounded.
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = TraceSynthesizer::new(17)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(15))
        .synthesize_for(FunctionId(0));
    let pool = PoolConfig {
        capacity_bytes: 8 * 1024 * 1024,
        ..Default::default()
    };
    let config = faasmem::faas::PlatformConfig {
        pool,
        ..Default::default()
    };
    let mut sim = PlatformSim::builder()
        .register_function(spec)
        .config(config)
        .policy(FaasMemPolicy::new())
        .seed(2)
        .build();
    let mut report = sim.run(&trace);
    assert_eq!(report.requests_completed, trace.len());
    assert!(report.pool_stats.used_bytes <= 8 * 1024 * 1024);
    assert_eq!(report.remote_mem.last_value(), Some(0.0));
    // With nowhere to offload, behaviour approaches the baseline: P95
    // must not blow up.
    assert!(report.p95_latency() < SimDuration::from_secs(8));
}
