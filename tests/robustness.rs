//! Robustness: the headline claims must hold across seeds, loads and
//! platform configurations — not just at the defaults the figures use.

use faasmem::faas::AdaptiveKeepAlive;
use faasmem::prelude::*;

fn run<P: MemoryPolicy + 'static>(
    spec: &BenchmarkSpec,
    trace: &InvocationTrace,
    policy: P,
    seed: u64,
) -> RunReport {
    let mut sim = PlatformSim::builder()
        .register_function(spec.clone())
        .policy(policy)
        .seed(seed)
        .build();
    sim.run(trace)
}

#[test]
fn memory_savings_hold_across_seeds_and_loads() {
    for seed in [1u64, 77, 4242] {
        for class in [LoadClass::High, LoadClass::Middle] {
            for name in ["json", "web"] {
                let spec = BenchmarkSpec::by_name(name).unwrap();
                let trace = TraceSynthesizer::new(seed)
                    .load_class(class)
                    .duration(SimTime::from_mins(45))
                    .synthesize_for(FunctionId(0));
                if trace.len() < 3 {
                    continue;
                }
                let mut base = run(&spec, &trace, NoOffloadPolicy, seed);
                let mut fm = run(&spec, &trace, FaasMemPolicy::new(), seed);
                let saved = 1.0 - fm.avg_local_mib() / base.avg_local_mib();
                assert!(
                    saved > 0.3,
                    "{name} seed {seed} {class:?}: saved only {:.0}%",
                    saved * 100.0
                );
                // The paper's P95 guard is statistical: with sparse
                // traces the 95th percentile can land on the one
                // semi-warm recall, so accept either a small relative
                // increase or a small absolute one.
                let p95_base = base.p95_latency().as_secs_f64();
                let p95_fm = fm.p95_latency().as_secs_f64();
                assert!(
                    p95_fm < p95_base * 1.2 || p95_fm - p95_base < 0.1,
                    "{name} seed {seed} {class:?}: P95 {p95_fm:.3}s vs {p95_base:.3}s"
                );
            }
        }
    }
}

#[test]
fn determinism_holds_for_every_policy_under_bursty_load() {
    let trace = TraceSynthesizer::new(5)
        .load_class(LoadClass::High)
        .bursty(true)
        .duration(SimTime::from_mins(20))
        .synthesize_for(FunctionId(0));
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let fingerprint = |report: RunReport| {
        (
            report.requests_completed,
            report.cold_starts,
            report.pool_stats,
            report.containers.len(),
        )
    };
    let a = fingerprint(run(&spec, &trace, FaasMemPolicy::new(), 9));
    let b = fingerprint(run(&spec, &trace, FaasMemPolicy::new(), 9));
    assert_eq!(a, b);
    let a = fingerprint(run(&spec, &trace, TmoPolicy::default(), 9));
    let b = fingerprint(run(&spec, &trace, TmoPolicy::default(), 9));
    assert_eq!(a, b);
    let a = fingerprint(run(&spec, &trace, DamonPolicy::default(), 9));
    let b = fingerprint(run(&spec, &trace, DamonPolicy::default(), 9));
    assert_eq!(a, b);
}

#[test]
fn adaptive_keepalive_never_leaks_containers() {
    // Irregular gaps exercise the re-arm path where the learned timeout
    // changes between a recycle check being scheduled and firing.
    let spec = BenchmarkSpec::by_name("float").unwrap();
    for seed in [3u64, 13] {
        let trace = TraceSynthesizer::new(seed)
            .load_class(LoadClass::Middle)
            .bursty(true)
            .duration(SimTime::from_mins(90))
            .synthesize_for(FunctionId(0));
        let mut sim = PlatformSim::builder()
            .register_function(spec.clone())
            .adaptive_keep_alive(AdaptiveKeepAlive::default())
            .policy(FaasMemPolicy::new())
            .seed(seed)
            .build();
        let report = sim.run(&trace);
        assert_eq!(report.requests_completed, trace.len());
        assert_eq!(
            report.live_containers.last_value(),
            Some(0.0),
            "container leak"
        );
        assert_eq!(report.local_mem.last_value(), Some(0.0));
    }
}

#[test]
fn page_size_does_not_change_the_winner() {
    let spec = BenchmarkSpec::by_name("web").unwrap();
    let trace = TraceSynthesizer::new(31)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(20))
        .synthesize_for(FunctionId(0));
    for page_size in [16 * 1024u64, 64 * 1024, 256 * 1024] {
        let run_at = |faasmem: bool| {
            let builder = PlatformSim::builder()
                .register_function(spec.clone())
                .page_size(page_size)
                .seed(1);
            let mut sim = if faasmem {
                builder.policy(FaasMemPolicy::new()).build()
            } else {
                builder.policy(NoOffloadPolicy).build()
            };
            sim.run(&trace).avg_local_mib()
        };
        let base = run_at(false);
        let fm = run_at(true);
        assert!(
            fm < base * 0.5,
            "page size {page_size}: FaaSMem {fm:.0} MiB vs base {base:.0} MiB"
        );
    }
}

#[test]
fn tiny_pool_degrades_gracefully() {
    // A pool that can hold almost nothing: offloads truncate, but runs
    // stay correct and latency bounded.
    let spec = BenchmarkSpec::by_name("bert").unwrap();
    let trace = TraceSynthesizer::new(17)
        .load_class(LoadClass::High)
        .duration(SimTime::from_mins(15))
        .synthesize_for(FunctionId(0));
    let pool = PoolConfig {
        capacity_bytes: 8 * 1024 * 1024,
        ..Default::default()
    };
    let config = faasmem::faas::PlatformConfig {
        pool,
        ..Default::default()
    };
    let mut sim = PlatformSim::builder()
        .register_function(spec)
        .config(config)
        .policy(FaasMemPolicy::new())
        .seed(2)
        .build();
    let mut report = sim.run(&trace);
    assert_eq!(report.requests_completed, trace.len());
    assert!(report.pool_stats.used_bytes <= 8 * 1024 * 1024);
    assert_eq!(report.remote_mem.last_value(), Some(0.0));
    // With nowhere to offload, behaviour approaches the baseline: P95
    // must not blow up.
    assert!(report.p95_latency() < SimDuration::from_secs(8));
}
